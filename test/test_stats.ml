(* Tests for lopc_stats: Welford, time averages, histograms, samples,
   batch means, error metrics. *)

module Welford = Lopc_stats.Welford
module Time_average = Lopc_stats.Time_average
module Histogram = Lopc_stats.Histogram
module Sample = Lopc_stats.Sample
module Batch_means = Lopc_stats.Batch_means
module Error = Lopc_stats.Error
module P2 = Lopc_stats.P2_quantile
module Rng = Lopc_prng.Rng

let feq = Alcotest.(check (float 1e-9))

let test_welford_basic () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Welford.count w);
  feq "mean" 5. (Welford.mean w);
  feq "population variance" 4. (Welford.population_variance w);
  feq "min" 2. (Welford.min w);
  feq "max" 9. (Welford.max w);
  feq "total" 40. (Welford.total w)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Welford.mean w));
  feq "variance 0" 0. (Welford.variance w)

let test_welford_single () =
  let w = Welford.create () in
  Welford.add w 3.;
  feq "mean" 3. (Welford.mean w);
  feq "variance" 0. (Welford.variance w)

let test_welford_rejects_nan () =
  let w = Welford.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Welford.add: non-finite observation")
    (fun () -> Welford.add w Float.nan)

let test_welford_merge () =
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  let xs = [ 1.; 2.; 3. ] and ys = [ 10.; 20.; 30.; 40. ] in
  List.iter (Welford.add a) xs;
  List.iter (Welford.add b) ys;
  List.iter (Welford.add whole) (xs @ ys);
  let m = Welford.merge a b in
  Alcotest.(check int) "count" (Welford.count whole) (Welford.count m);
  feq "mean" (Welford.mean whole) (Welford.mean m);
  Alcotest.(check (float 1e-9)) "variance" (Welford.variance whole) (Welford.variance m)

let test_welford_scv () =
  let w = Welford.create () in
  (* Two-point distribution at 0 and 2: mean 1, pop var 1, scv 1. *)
  List.iter (Welford.add w) [ 0.; 2.; 0.; 2. ];
  feq "scv" 1. (Welford.scv w)

let prop_welford_matches_direct =
  QCheck.Test.make ~name:"welford mean/variance match direct computation" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = Float.of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. Float.of_int (List.length xs - 1)
      in
      Float.abs (Welford.mean w -. mean) <= 1e-6 *. Float.max 1. (Float.abs mean)
      && Float.abs (Welford.variance w -. var) <= 1e-6 *. Float.max 1. var)

let test_time_average_piecewise () =
  let ta = Time_average.create () in
  (* 0 on [0,10), 4 on [10,20), 2 on [20,40). *)
  Time_average.update ta ~now:10. 4.;
  Time_average.update ta ~now:20. 2.;
  feq "average" ((0. +. 40. +. 40.) /. 40.) (Time_average.average ta ~now:40.);
  feq "integral" 80. (Time_average.integral ta ~now:40.)

let test_time_average_reset () =
  let ta = Time_average.create ~value:3. () in
  Time_average.update ta ~now:10. 5.;
  Time_average.reset ta ~now:10.;
  feq "value preserved" 5. (Time_average.value ta);
  feq "fresh average" 5. (Time_average.average ta ~now:20.)

let test_time_average_zero_window () =
  (* Averages over a zero-length window are undefined, never 0/0 noise:
     the observability probes rely on [nan] here to mark "no data yet". *)
  let ta = Time_average.create () in
  Alcotest.(check bool) "fresh average is nan" true
    (Float.is_nan (Time_average.average ta ~now:0.));
  Time_average.update ta ~now:0. 7.;
  Alcotest.(check bool) "zero elapsed stays nan" true
    (Float.is_nan (Time_average.average ta ~now:0.));
  feq "integral over empty window" 0. (Time_average.integral ta ~now:0.);
  Time_average.update ta ~now:5. 2.;
  Time_average.reset ta ~now:5.;
  Alcotest.(check bool) "window restarts empty after reset" true
    (Float.is_nan (Time_average.average ta ~now:5.));
  feq "first post-reset average" 2. (Time_average.average ta ~now:6.)

let test_time_average_backwards () =
  let ta = Time_average.create () in
  Time_average.update ta ~now:5. 1.;
  Alcotest.check_raises "backwards" (Invalid_argument "Time_average: time went backwards")
    (fun () -> Time_average.update ta ~now:4. 2.)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ -1.; 0.; 1.; 2.5; 5.; 9.99; 10.; 42. ];
  Alcotest.(check int) "total" 8 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "bin0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin1" 1 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin2" 1 (Histogram.bin_count h 2);
  Alcotest.(check int) "bin4" 1 (Histogram.bin_count h 4)

let test_histogram_cdf () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for i = 0 to 99 do
    Histogram.add h (Float.of_int i /. 10.)
  done;
  let f = Histogram.fraction_below h 5. in
  Alcotest.(check bool) "cdf(5) ~ 0.5" true (Float.abs (f -. 0.5) < 0.02)

let test_sample_quantiles () =
  let s = Sample.of_array [| 5.; 1.; 3.; 2.; 4. |] in
  feq "median" 3. (Sample.median s);
  feq "q0" 1. (Sample.quantile s 0.);
  feq "q1" 5. (Sample.quantile s 1.);
  feq "q.25" 2. (Sample.quantile s 0.25);
  feq "mean" 3. (Sample.mean s);
  feq "min" 1. (Sample.min s);
  feq "max" 5. (Sample.max s)

let test_sample_interpolation () =
  let s = Sample.of_array [| 0.; 10. |] in
  feq "q 0.3" 3. (Sample.quantile s 0.3)

let test_sample_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Sample.of_array: empty sample")
    (fun () -> ignore (Sample.of_array [||]));
  let s = Sample.of_array [| 1. |] in
  Alcotest.check_raises "bad q" (Invalid_argument "Sample.quantile: q outside [0,1]")
    (fun () -> ignore (Sample.quantile s 1.5))

let test_batch_means () =
  let b = Batch_means.create ~batch_size:10 in
  for i = 1 to 100 do
    Batch_means.add b (Float.of_int (i mod 10))
  done;
  Alcotest.(check int) "count" 100 (Batch_means.count b);
  Alcotest.(check int) "batches" 10 (Batch_means.completed_batches b);
  feq "mean" 4.5 (Batch_means.mean b);
  (* Identical batches => zero spread. *)
  feq "half width" 0. (Batch_means.half_width b)

let test_batch_means_partial () =
  let b = Batch_means.create ~batch_size:10 in
  for _ = 1 to 15 do
    Batch_means.add b 1.
  done;
  Alcotest.(check int) "only one complete batch" 1 (Batch_means.completed_batches b)

let test_error_metrics () =
  feq "relative" 0.1 (Error.relative ~predicted:110. ~measured:100.);
  feq "percent" (-37.) (Error.percent ~predicted:63. ~measured:100.);
  feq "absolute" 10. (Error.absolute ~predicted:110. ~measured:100.);
  (* A zero measurement propagates instead of raising. *)
  Alcotest.(check bool) "zero measured is +inf" true
    (Float.equal Float.infinity (Error.relative ~predicted:5. ~measured:0.));
  Alcotest.(check bool) "0/0 is nan" true
    (Float.is_nan (Error.relative ~predicted:0. ~measured:0.))

let test_error_summary () =
  let s =
    Error.summarize ~predicted:[| 106.; 100.; 96. |] ~measured:[| 100.; 100.; 100. |]
  in
  feq "max abs" 6. s.Error.max_abs_percent;
  Alcotest.(check int) "worst index" 0 s.Error.worst_index;
  feq "bias" (2. /. 3.) s.Error.bias_percent;
  feq "mape" (10. /. 3.) s.Error.mean_abs_percent;
  Alcotest.(check int) "nothing skipped" 0 s.Error.skipped

let test_error_summary_skips () =
  (* Degenerate pairs are dropped from the aggregates and counted. *)
  let s = Error.summarize ~predicted:[| 106.; 100. |] ~measured:[| 100.; 0. |] in
  feq "max abs over finite pairs" 6. s.Error.max_abs_percent;
  Alcotest.(check int) "worst index" 0 s.Error.worst_index;
  Alcotest.(check int) "one skipped" 1 s.Error.skipped;
  feq "mape over finite pairs" 6. s.Error.mean_abs_percent;
  let all = Error.summarize ~predicted:[| 1.; 2. |] ~measured:[| 0.; 0. |] in
  Alcotest.(check int) "all skipped" 2 all.Error.skipped;
  Alcotest.(check int) "no worst index" (-1) all.Error.worst_index;
  Alcotest.(check bool) "nan mape" true (Float.is_nan all.Error.mean_abs_percent)

let test_error_summary_invalid () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Error.summarize: length mismatch")
    (fun () -> ignore (Error.summarize ~predicted:[| 1. |] ~measured:[| 1.; 2. |]))

let test_p2_small_sample_exact () =
  let p2 = P2.create ~q:0.5 in
  List.iter (P2.add p2) [ 3.; 1.; 2. ];
  feq "exact median of 3" 2. (P2.estimate p2)

let test_p2_empty () =
  let p2 = P2.create ~q:0.5 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (P2.estimate p2))

let test_p2_uniform_median () =
  let p2 = P2.create ~q:0.5 in
  let g = Rng.create 11 in
  for _ = 1 to 100_000 do
    P2.add p2 (Rng.float g)
  done;
  Alcotest.(check bool) "median ~ 0.5" true (Float.abs (P2.estimate p2 -. 0.5) < 0.01)

let test_p2_exponential_tail () =
  (* 95th percentile of Exp(1) is -ln(0.05) ~ 2.996. *)
  let p2 = P2.create ~q:0.95 in
  let g = Rng.create 13 in
  for _ = 1 to 200_000 do
    P2.add p2 (Rng.exponential g 1.)
  done;
  let expected = -.log 0.05 in
  Alcotest.(check bool) "p95 of Exp(1)" true
    (Float.abs (P2.estimate p2 -. expected) < 0.1)

let test_p2_vs_exact_sample () =
  (* Against the exact quantile of the same stream. *)
  let g = Rng.create 17 in
  let data = Array.init 50_000 (fun _ -> Rng.gaussian g) in
  let p2 = P2.create ~q:0.9 in
  Array.iter (P2.add p2) data;
  let exact = Sample.quantile (Sample.of_array data) 0.9 in
  Alcotest.(check bool) "p90 close to exact" true (Float.abs (P2.estimate p2 -. exact) < 0.03)

let test_p2_validation () =
  Alcotest.(check bool) "q = 0 rejected" true
    (try
       ignore (P2.create ~q:0.);
       false
     with Invalid_argument _ -> true);
  let p2 = P2.create ~q:0.5 in
  Alcotest.(check bool) "nan rejected" true
    (try
       P2.add p2 Float.nan;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "welford basic moments" `Quick test_welford_basic;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford singleton" `Quick test_welford_single;
    Alcotest.test_case "welford rejects non-finite" `Quick test_welford_rejects_nan;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "welford scv" `Quick test_welford_scv;
    QCheck_alcotest.to_alcotest prop_welford_matches_direct;
    Alcotest.test_case "time average piecewise" `Quick test_time_average_piecewise;
    Alcotest.test_case "time average reset" `Quick test_time_average_reset;
    Alcotest.test_case "time average rejects backwards time" `Quick test_time_average_backwards;
    Alcotest.test_case "time average zero-length windows" `Quick test_time_average_zero_window;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram cdf estimate" `Quick test_histogram_cdf;
    Alcotest.test_case "sample quantiles" `Quick test_sample_quantiles;
    Alcotest.test_case "sample interpolation" `Quick test_sample_interpolation;
    Alcotest.test_case "sample invalid input" `Quick test_sample_invalid;
    Alcotest.test_case "batch means" `Quick test_batch_means;
    Alcotest.test_case "batch means partial batch" `Quick test_batch_means_partial;
    Alcotest.test_case "error metrics" `Quick test_error_metrics;
    Alcotest.test_case "error summary" `Quick test_error_summary;
    Alcotest.test_case "error summary invalid" `Quick test_error_summary_invalid;
    Alcotest.test_case "error summary skips degenerate pairs" `Quick
      test_error_summary_skips;
    Alcotest.test_case "p2 exact below five samples" `Quick test_p2_small_sample_exact;
    Alcotest.test_case "p2 empty" `Quick test_p2_empty;
    Alcotest.test_case "p2 uniform median" `Quick test_p2_uniform_median;
    Alcotest.test_case "p2 exponential tail" `Quick test_p2_exponential_tail;
    Alcotest.test_case "p2 vs exact sample quantile" `Quick test_p2_vs_exact_sample;
    Alcotest.test_case "p2 validation" `Quick test_p2_validation;
  ]
