(* Minimal summary fixture for the --show-intervals format test: one
   annotated parameter, and a return interval the transfer functions can
   pin to [0, 1]. *)
let consume ~q:(q [@lopc.prob]) = 1. -. q
