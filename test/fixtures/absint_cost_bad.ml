(* Only the upper bound is guarded, so the interval flowing into the
   non-negative cost field still reaches below zero. *)
type t = { budget : float [@lopc.cost] }

let of_measure x = if x <= 100. then { budget = x } else { budget = 100. }
