(* u < 1. holding bounds u away from 1 (Float.pred 1.), so the corner
   evaluation of 1. -. u excludes zero and the division is proven safe. *)
let residence s u = if u < 1. then s /. (1. -. u) else s
