(* Call-graph fixture: a first-class module packed at toplevel. The
   references inside the packed structure roll up into the binding that
   packs it, so taint still flows: solve_status unpacks [wall], and
   [wall]'s packed body reads the wall clock. *)

module type SRC = sig
  val now : unit -> float
end

let wall : (module SRC) =
  (module struct
    let now () = Sys.time ()
  end : SRC)

let solve_status x =
  let (module S) = wall in
  x +. S.now ()
