(* Guard on the wrong side: the conditional names u, which satisfies the
   syntactic unguarded-division heuristic, but u >= 0. leaves u <= 1
   unproven — 1. -. u still straddles zero. Only the interval stage can
   tell this apart from the good fixture. *)
let residence s u = if u >= 0. then s /. (1. -. u) else s
