(* The lower bound is the one the annotation needs: x >= 0. holding
   refines x to [0, +inf] without NaN. *)
type t = { budget : float [@lopc.cost] }

let of_measure x = if x >= 0. then { budget = x } else { budget = 0. }
