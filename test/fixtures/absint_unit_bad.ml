(* Two different [@lopc.unit] tags mixed additively. *)
type sample = {
  cycles : float [@lopc.unit "cycles"];
  bytes : float [@lopc.unit "bytes"];
}

let total s = s.cycles +. s.bytes
