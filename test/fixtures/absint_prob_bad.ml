(* Guard on one branch only: a reachability or syntactic pass sees a
   conditional over x, but only the upper bound is proven — x may still be
   negative when it flows into the probability-annotated field. *)
type t = { q : float [@lopc.prob] }

let clamp_above x = if x <= 1. then { q = x } else { q = 1. }
