(* Both bounds proven on the constructing branch: x is refined to [0, 1]
   (and NaN-free, since a held comparison rules NaN out). *)
type t = { q : float [@lopc.prob] }

let clamp x = if x >= 0. && x <= 1. then { q = x } else { q = 0. }
