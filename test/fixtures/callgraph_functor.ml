(* Call-graph fixture: definitions inside a functor body are ordinary
   nodes, and the typed rules see through same-unit references between
   them. The functor application [App] is deliberately not expanded —
   references through it stay unresolved and every walk tolerates them. *)

module type CLOCK = sig
  val now : unit -> float
end

module F (C : CLOCK) = struct
  let clock () = Sys.time ()

  let solve_status x = x +. clock () +. C.now ()
end

module Wall = struct
  let now () = 0.
end

module App = F (Wall)

let use x = App.solve_status x
