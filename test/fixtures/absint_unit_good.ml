(* An explicit conversion factor: multiplication drops the dimension tag,
   so the sum no longer mixes declared units. *)
type sample = {
  cycles : float [@lopc.unit "cycles"];
  bytes : float [@lopc.unit "bytes"];
}

let total s = s.cycles +. (s.bytes *. 0.25)
