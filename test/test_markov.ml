(* Tests for lopc_markov: the generic CTMC solver against textbook chains
   and the exact LoPC machine against simulator and model. *)

module Ctmc = Lopc_markov.Ctmc
module EM = Lopc_markov.Exact_machine
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let feq tol = Alcotest.(check (float tol))

(* Two-state chain: 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a)/(a+b). *)
let test_ctmc_two_state () =
  let sol =
    Ctmc.solve ~initial:0
      ~transitions:(function 0 -> [ (1, 2.) ] | _ -> [ (0, 6.) ])
      ()
  in
  Alcotest.(check int) "two states" 2 (Ctmc.states sol);
  feq 1e-9 "pi0" 0.75 (Ctmc.probability sol 0);
  feq 1e-9 "pi1" 0.25 (Ctmc.probability sol 1)

(* M/M/1/K queue: birth rate l, death rate m, capacity K.
   pi_n = rho^n (1-rho)/(1-rho^{K+1}). *)
let test_ctmc_mm1k () =
  let l = 2. and m = 3. and k = 5 in
  let sol =
    Ctmc.solve ~initial:0
      ~transitions:(fun n ->
        (if n < k then [ (n + 1, l) ] else []) @ if n > 0 then [ (n - 1, m) ] else [])
      ()
  in
  let rho = l /. m in
  let norm =
    ((1. -. rho) /. (1. -. (rho ** Float.of_int (k + 1)))
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "closed-form M/M/1/K reference with fixed test parameters l < m, so rho is \
         a constant strictly below 1 and the normalizer is positive"])
  in
  for n = 0 to k do
    feq 1e-9 (Printf.sprintf "pi%d" n)
      ((rho ** Float.of_int n) *. norm)
      (Ctmc.probability sol n)
  done;
  (* Mean queue via expectation. *)
  let expected_mean =
    List.init (k + 1) (fun n -> Float.of_int n *. (rho ** Float.of_int n) *. norm)
    |> List.fold_left ( +. ) 0.
  in
  feq 1e-9 "mean customers" expected_mean
    (Ctmc.expectation sol ~f:Float.of_int)

let test_ctmc_budget () =
  (* An infinite chain must hit the state budget. *)
  Alcotest.(check bool) "budget enforced" true
    (try
       ignore
         (Ctmc.solve ~max_states:100 ~initial:0
            ~transitions:(fun n -> [ (n + 1, 1.) ])
            ());
       false
     with Ctmc.State_space_too_large _ -> true)

let test_ctmc_invalid_rate () =
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore (Ctmc.solve ~initial:0 ~transitions:(fun _ -> [ (1, -1.) ]) ());
       false
     with Invalid_argument _ -> true)

let test_exact_machine_small_state_spaces () =
  let r2 = EM.all_to_all ~p:2 ~w:1000. ~so:200. ~st:40. () in
  Alcotest.(check bool) "P=2 compact" true (r2.EM.states < 100);
  let r3 = EM.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. () in
  Alcotest.(check bool) "P=3 moderate" true (r3.EM.states < 10_000);
  (* More nodes, slightly more contention. *)
  Alcotest.(check bool) "R grows with P" true (r3.EM.cycle_time > r2.EM.cycle_time)

let test_exact_machine_validates_simulator () =
  (* The exact chain and the event-driven simulator describe the same
     machine: agreement well inside Monte-Carlo noise. *)
  let exact = EM.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. () in
  let spec =
    Spec.all_to_all ~nodes:3 ~work:(D.Exponential 1000.) ~handler:(D.Exponential 200.)
      ~wire:(D.Exponential 40.) ()
  in
  let sim =
    Metrics.mean_response (Machine.run ~spec ~cycles:150_000 ()).Machine.metrics
  in
  let err = Float.abs ((sim -. exact.EM.cycle_time) /. exact.EM.cycle_time) in
  if err > 0.01 then
    Alcotest.failf "simulator %.2f vs exact %.2f (%.2f%%)" sim exact.EM.cycle_time
      (100. *. err)

let test_exact_machine_measures_model_error () =
  (* Against the exact answer the LoPC model must be pessimistic (Bard)
     and within the paper's error envelope. *)
  List.iter
    (fun w ->
      let exact = EM.all_to_all ~p:4 ~w ~so:200. ~st:40. () in
      let params = Lopc.Params.create ~c2:1. ~p:4 ~st:40. ~so:200. () in
      let model = (Lopc.All_to_all.solve params ~w).Lopc.All_to_all.r in
      let err = (model -. exact.EM.cycle_time) /. exact.EM.cycle_time in
      if err < -0.005 || err > 0.09 then
        Alcotest.failf "W=%g: model %.2f vs exact %.2f (%+.2f%%)" w model
          exact.EM.cycle_time (100. *. err))
    [ 1.; 200.; 1000. ]

let test_exact_machine_littles_law () =
  (* Exact X, Qq, Qy and per-node utilizations must satisfy the identities
     the model is built on. *)
  let r = EM.all_to_all ~p:3 ~w:500. ~so:100. ~st:20. () in
  (* Uq + Uy <= 1 (one handler at a time). *)
  Alcotest.(check bool) "processor not oversubscribed" true (r.EM.uq +. r.EM.uy <= 1.);
  (* Utilization = throughput x service (per node, one request and one
     reply per cycle). *)
  feq 1e-6 "Uq = X So" (r.EM.throughput *. 100.) r.EM.uq;
  feq 1e-6 "Uy = X So" (r.EM.throughput *. 100.) r.EM.uy

let test_exact_machine_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> EM.all_to_all ~p:1 ~w:1. ~so:1. ~st:1. ());
      (fun () -> EM.all_to_all ~p:2 ~w:0. ~so:1. ~st:1. ());
      (fun () -> EM.all_to_all ~p:2 ~w:1. ~so:(-1.) ~st:1. ());
    ]

(* --- differential reference: the seed solver ----------------------------- *)

(* The pre-CSR solver in miniature: list-of-rows generator built by the
   same BFS, and uniformized power iteration with successive-step
   convergence and no renormalization. The qcheck law below pins the
   sparse rewrite to this reference at the %.6g precision the artifact
   tables print, over random chains including absorbing states,
   self-loops and duplicate successors. *)
module Seed_reference = struct
  let solve ?(tol = 1e-12) ?(max_iter = 50_000) ~initial ~transitions () =
    let index = Hashtbl.create 64 in
    let count = ref 0 in
    let id_of s =
      match Hashtbl.find_opt index s with
      | Some i -> i
      | None ->
        let i = !count in
        Hashtbl.add index s i;
        incr count;
        i
    in
    ignore (id_of initial);
    let rows = ref (Array.make 64 []) in
    let ensure i =
      if i >= Array.length !rows then begin
        let fresh = Array.make (max (2 * Array.length !rows) (i + 1)) [] in
        Array.blit !rows 0 fresh 0 (Array.length !rows);
        rows := fresh
      end
    in
    let frontier = Queue.create () in
    Queue.push initial frontier;
    while not (Queue.is_empty frontier) do
      match Queue.take_opt frontier with
      | None -> ()
      | Some s ->
        let i = id_of s in
        ensure i;
        let out =
          List.filter_map
            (fun (s', r) ->
              if Float.equal r 0. then None
              else begin
                let before = !count in
                let j = id_of s' in
                if !count > before then Queue.push s' frontier;
                if j = i then None else Some (j, r)
              end)
            (transitions s)
        in
        (!rows).(i) <- out
    done;
    let n = !count in
    let rows = Array.sub !rows 0 n in
    let out_rate =
      Array.map (fun row -> List.fold_left (fun a (_, r) -> a +. r) 0. row) rows
    in
    let lambda = 1.01 *. Array.fold_left Float.max 1e-12 out_rate in
    let pi = Array.make n (1. /. Float.of_int n) in
    let next = Array.make n 0. in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      Array.fill next 0 n 0.;
      for i = 0 to n - 1 do
        next.(i) <- next.(i) +. (pi.(i) *. (1. -. (out_rate.(i) /. lambda)));
        List.iter
          (fun (j, rate) -> next.(j) <- next.(j) +. (pi.(i) *. rate /. lambda))
          rows.(i)
      done;
      let diff = ref 0. in
      for i = 0 to n - 1 do
        diff := !diff +. Float.abs (next.(i) -. pi.(i));
        pi.(i) <- next.(i)
      done;
      if !diff <= tol then converged := true
    done;
    (n, fun s -> match Hashtbl.find_opt index s with Some i -> pi.(i) | None -> 0.)
end

let arb_chain =
  let open QCheck in
  let print (n, rows) =
    Printf.sprintf "n=%d; %s" n
      (String.concat " | "
         (List.mapi
            (fun i row ->
              Printf.sprintf "%d:[%s]" i
                (String.concat ";"
                   (List.map (fun (j, r) -> Printf.sprintf "%d@%g" j r) row)))
            rows))
  in
  let gen =
    let open Gen in
    int_range 2 10 >>= fun n ->
    list_size (return n)
      (frequency
         [
           (1, return []) (* absorbing *);
           ( 5,
             list_size (int_range 1 4)
               (pair (int_range 0 (n - 1)) (oneofl [ 0.5; 1.; 2.5; 7.; 50. ])) );
         ])
    >>= fun rows -> return (n, rows)
  in
  make ~print gen

let prop_sparse_matches_seed =
  QCheck.Test.make ~name:"ctmc: sparse power matches seed solver at %.6g" ~count:150
    arb_chain
    (fun (n, rows) ->
      let transitions s = if s < n then List.nth rows s else [] in
      let ref_n, ref_prob = Seed_reference.solve ~initial:0 ~transitions () in
      match
        Ctmc.solve_status ~iteration:Ctmc.Power ~max_iter:50_000 ~initial:0
          ~transitions ()
      with
      | Some sol, _ ->
        Ctmc.states sol = ref_n
        && List.for_all
             (fun s ->
               String.equal
                 (Printf.sprintf "%.6g" (ref_prob s))
                 (Printf.sprintf "%.6g" (Ctmc.probability sol s)))
             (List.init n Fun.id)
      | None, _ -> false)

(* Ring plus random chords: strongly connected by construction, so Auto
   picks Gauss–Seidel and both methods must land on the same (unique)
   stationary distribution. *)
let arb_irreducible =
  let open QCheck in
  let print (n, ring, extra) =
    Printf.sprintf "n=%d ring=[%s] extra=[%s]" n
      (String.concat ";" (List.map (Printf.sprintf "%g") ring))
      (String.concat ";"
         (List.map (fun (i, j, r) -> Printf.sprintf "%d->%d@%g" i j r) extra))
  in
  let gen =
    let open Gen in
    int_range 2 8 >>= fun n ->
    list_size (return n) (oneofl [ 0.3; 1.; 4.; 20. ]) >>= fun ring ->
    list_size (int_range 0 (2 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (oneofl [ 0.7; 2.; 9. ]))
    >>= fun extra -> return (n, ring, extra)
  in
  make ~print gen

let prop_gs_matches_power =
  QCheck.Test.make ~name:"ctmc: gauss-seidel agrees with power on irreducible chains"
    ~count:100 arb_irreducible
    (fun (n, ring, extra) ->
      let transitions s =
        ((s + 1) mod n, List.nth ring s)
        :: List.filter_map
             (fun (i, j, r) -> if i = s && j <> s then Some (j, r) else None)
             extra
      in
      let solve it =
        match
          Ctmc.solve_status ~iteration:it ~max_iter:100_000 ~initial:0 ~transitions
            ()
        with
        | Some sol, Ctmc.Converged _ -> Some sol
        | _ -> None
      in
      match (solve Ctmc.Power, solve Ctmc.Gauss_seidel) with
      | Some a, Some b ->
        List.for_all
          (fun s ->
            let pa = Ctmc.probability a s and pb = Ctmc.probability b s in
            Float.abs (pa -. pb) <= 1e-8 +. (1e-6 *. Float.max pa pb))
          (List.init n Fun.id)
      | _ -> false)

(* Regression for the renormalization bugfix: on a stiff cycle the power
   iterate must remain a probability vector even when it cannot converge
   within the sweep budget (historically [sum pi] drifted freely and the
   reported diff was the raw successive step, not a residual). *)
let test_ctmc_stiff_sum_pi () =
  let transitions = function
    | 0 -> [ (1, 1e6) ]
    | 1 -> [ (2, 1.) ]
    | _ -> [ (0, 1e-3) ]
  in
  (match
     Ctmc.solve_status ~iteration:Ctmc.Power ~max_iter:2_000 ~initial:0
       ~transitions ()
   with
  | Some sol, Ctmc.Not_converged { diff; _ } ->
    Alcotest.(check bool) "residual above tol" true (diff > 1e-12);
    Alcotest.(check bool) "sum pi = 1 within 1e-12" true
      (Float.abs (Ctmc.sum_pi sol -. 1.) <= 1e-12)
  | _, st -> Alcotest.failf "unexpected power status: %s" (Ctmc.status_to_string st));
  match Ctmc.solve_status ~initial:0 ~transitions () with
  | Some sol, Ctmc.Converged _ ->
    Alcotest.(check bool) "sum pi after convergence" true
      (Float.abs (Ctmc.sum_pi sol -. 1.) <= 1e-12);
    (* Cycle balance: pi_i proportional to 1 / exit rate. *)
    let z = 1e-6 +. 1. +. 1e3 in
    feq 1e-9 "pi0" (1e-6 /. z) (Ctmc.probability sol 0);
    feq 1e-9 "pi1" (1. /. z) (Ctmc.probability sol 1);
    feq 1e-9 "pi2" (1e3 /. z) (Ctmc.probability sol 2)
  | _, st -> Alcotest.failf "unexpected auto status: %s" (Ctmc.status_to_string st)

(* Aitken-accelerated power must land on the Auto answer. *)
let test_ctmc_aitken () =
  let l = 2. and m = 3. and k = 5 in
  let transitions n =
    (if n < k then [ (n + 1, l) ] else []) @ if n > 0 then [ (n - 1, m) ] else []
  in
  let reference = Ctmc.solve ~initial:0 ~transitions () in
  match Ctmc.solve_status ~iteration:Ctmc.Power_aitken ~initial:0 ~transitions () with
  | Some sol, Ctmc.Converged _ ->
    for n = 0 to k do
      feq 1e-9
        (Printf.sprintf "pi%d" n)
        (Ctmc.probability reference n)
        (Ctmc.probability sol n)
    done
  | _, st -> Alcotest.failf "unexpected status: %s" (Ctmc.status_to_string st)

let suite =
  [
    Alcotest.test_case "ctmc: two-state chain" `Quick test_ctmc_two_state;
    Alcotest.test_case "ctmc: M/M/1/K closed form" `Quick test_ctmc_mm1k;
    Alcotest.test_case "ctmc: state budget" `Quick test_ctmc_budget;
    Alcotest.test_case "ctmc: invalid rate" `Quick test_ctmc_invalid_rate;
    Alcotest.test_case "exact machine: state spaces" `Quick test_exact_machine_small_state_spaces;
    Alcotest.test_case "exact machine validates simulator" `Slow test_exact_machine_validates_simulator;
    Alcotest.test_case "exact machine measures model error" `Slow test_exact_machine_measures_model_error;
    Alcotest.test_case "exact machine: utilization identities" `Quick test_exact_machine_littles_law;
    Alcotest.test_case "exact machine: validation" `Quick test_exact_machine_validation;
    Alcotest.test_case "ctmc: stiff chain keeps sum pi = 1" `Quick
      test_ctmc_stiff_sum_pi;
    Alcotest.test_case "ctmc: aitken matches auto" `Quick test_ctmc_aitken;
    QCheck_alcotest.to_alcotest prop_sparse_matches_seed;
    QCheck_alcotest.to_alcotest prop_gs_matches_power;
  ]
