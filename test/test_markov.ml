(* Tests for lopc_markov: the generic CTMC solver against textbook chains
   and the exact LoPC machine against simulator and model. *)

module Ctmc = Lopc_markov.Ctmc
module EM = Lopc_markov.Exact_machine
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let feq tol = Alcotest.(check (float tol))

(* Two-state chain: 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a)/(a+b). *)
let test_ctmc_two_state () =
  let sol =
    Ctmc.solve ~initial:0
      ~transitions:(function 0 -> [ (1, 2.) ] | _ -> [ (0, 6.) ])
      ()
  in
  Alcotest.(check int) "two states" 2 (Ctmc.states sol);
  feq 1e-9 "pi0" 0.75 (Ctmc.probability sol 0);
  feq 1e-9 "pi1" 0.25 (Ctmc.probability sol 1)

(* M/M/1/K queue: birth rate l, death rate m, capacity K.
   pi_n = rho^n (1-rho)/(1-rho^{K+1}). *)
let test_ctmc_mm1k () =
  let l = 2. and m = 3. and k = 5 in
  let sol =
    Ctmc.solve ~initial:0
      ~transitions:(fun n ->
        (if n < k then [ (n + 1, l) ] else []) @ if n > 0 then [ (n - 1, m) ] else [])
      ()
  in
  let rho = l /. m in
  let norm =
    ((1. -. rho) /. (1. -. (rho ** Float.of_int (k + 1)))
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "closed-form M/M/1/K reference with fixed test parameters l < m, so rho is \
         a constant strictly below 1 and the normalizer is positive"])
  in
  for n = 0 to k do
    feq 1e-9 (Printf.sprintf "pi%d" n)
      ((rho ** Float.of_int n) *. norm)
      (Ctmc.probability sol n)
  done;
  (* Mean queue via expectation. *)
  let expected_mean =
    List.init (k + 1) (fun n -> Float.of_int n *. (rho ** Float.of_int n) *. norm)
    |> List.fold_left ( +. ) 0.
  in
  feq 1e-9 "mean customers" expected_mean
    (Ctmc.expectation sol ~f:Float.of_int)

let test_ctmc_budget () =
  (* An infinite chain must hit the state budget. *)
  Alcotest.(check bool) "budget enforced" true
    (try
       ignore
         (Ctmc.solve ~max_states:100 ~initial:0
            ~transitions:(fun n -> [ (n + 1, 1.) ])
            ());
       false
     with Ctmc.State_space_too_large _ -> true)

let test_ctmc_invalid_rate () =
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore (Ctmc.solve ~initial:0 ~transitions:(fun _ -> [ (1, -1.) ]) ());
       false
     with Invalid_argument _ -> true)

let test_exact_machine_small_state_spaces () =
  let r2 = EM.all_to_all ~p:2 ~w:1000. ~so:200. ~st:40. () in
  Alcotest.(check bool) "P=2 compact" true (r2.EM.states < 100);
  let r3 = EM.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. () in
  Alcotest.(check bool) "P=3 moderate" true (r3.EM.states < 10_000);
  (* More nodes, slightly more contention. *)
  Alcotest.(check bool) "R grows with P" true (r3.EM.cycle_time > r2.EM.cycle_time)

let test_exact_machine_validates_simulator () =
  (* The exact chain and the event-driven simulator describe the same
     machine: agreement well inside Monte-Carlo noise. *)
  let exact = EM.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. () in
  let spec =
    Spec.all_to_all ~nodes:3 ~work:(D.Exponential 1000.) ~handler:(D.Exponential 200.)
      ~wire:(D.Exponential 40.) ()
  in
  let sim =
    Metrics.mean_response (Machine.run ~spec ~cycles:150_000 ()).Machine.metrics
  in
  let err = Float.abs ((sim -. exact.EM.cycle_time) /. exact.EM.cycle_time) in
  if err > 0.01 then
    Alcotest.failf "simulator %.2f vs exact %.2f (%.2f%%)" sim exact.EM.cycle_time
      (100. *. err)

let test_exact_machine_measures_model_error () =
  (* Against the exact answer the LoPC model must be pessimistic (Bard)
     and within the paper's error envelope. *)
  List.iter
    (fun w ->
      let exact = EM.all_to_all ~p:4 ~w ~so:200. ~st:40. () in
      let params = Lopc.Params.create ~c2:1. ~p:4 ~st:40. ~so:200. () in
      let model = (Lopc.All_to_all.solve params ~w).Lopc.All_to_all.r in
      let err = (model -. exact.EM.cycle_time) /. exact.EM.cycle_time in
      if err < -0.005 || err > 0.09 then
        Alcotest.failf "W=%g: model %.2f vs exact %.2f (%+.2f%%)" w model
          exact.EM.cycle_time (100. *. err))
    [ 1.; 200.; 1000. ]

let test_exact_machine_littles_law () =
  (* Exact X, Qq, Qy and per-node utilizations must satisfy the identities
     the model is built on. *)
  let r = EM.all_to_all ~p:3 ~w:500. ~so:100. ~st:20. () in
  (* Uq + Uy <= 1 (one handler at a time). *)
  Alcotest.(check bool) "processor not oversubscribed" true (r.EM.uq +. r.EM.uy <= 1.);
  (* Utilization = throughput x service (per node, one request and one
     reply per cycle). *)
  feq 1e-6 "Uq = X So" (r.EM.throughput *. 100.) r.EM.uq;
  feq 1e-6 "Uy = X So" (r.EM.throughput *. 100.) r.EM.uy

let test_exact_machine_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> EM.all_to_all ~p:1 ~w:1. ~so:1. ~st:1. ());
      (fun () -> EM.all_to_all ~p:2 ~w:0. ~so:1. ~st:1. ());
      (fun () -> EM.all_to_all ~p:2 ~w:1. ~so:(-1.) ~st:1. ());
    ]

let suite =
  [
    Alcotest.test_case "ctmc: two-state chain" `Quick test_ctmc_two_state;
    Alcotest.test_case "ctmc: M/M/1/K closed form" `Quick test_ctmc_mm1k;
    Alcotest.test_case "ctmc: state budget" `Quick test_ctmc_budget;
    Alcotest.test_case "ctmc: invalid rate" `Quick test_ctmc_invalid_rate;
    Alcotest.test_case "exact machine: state spaces" `Quick test_exact_machine_small_state_spaces;
    Alcotest.test_case "exact machine validates simulator" `Slow test_exact_machine_validates_simulator;
    Alcotest.test_case "exact machine measures model error" `Slow test_exact_machine_measures_model_error;
    Alcotest.test_case "exact machine: utilization identities" `Quick test_exact_machine_littles_law;
    Alcotest.test_case "exact machine: validation" `Quick test_exact_machine_validation;
  ]
