(* Observability layer tests: golden files for the two trace emitters
   (byte-exact against committed fixtures), span well-nesting and
   begin/end balance over arbitrary simulator configurations, trace
   identity across --jobs settings, trajectory probes, and the solver
   convergence telemetry (strictly decreasing residuals on a contraction;
   saturating-station identification).

   Regenerate the goldens after an intentional format change with
     OBS_GOLDEN_WRITE=$PWD/test/fixtures dune exec test/test_main.exe -- test obs
   and review the diff. *)

module Recorder = Lopc_obs.Recorder
module Series = Lopc_obs.Series
module Reservoir = Lopc_obs.Reservoir
module Sim_probe = Lopc_obs.Sim_probe
module Solver_probe = Lopc_numerics.Solver_probe
module Fixed_point = Lopc_numerics.Fixed_point
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Pattern = Lopc_workloads.Pattern
module D = Lopc_dist.Distribution
module Params = Lopc.Params
module A = Lopc.All_to_all
module G = Lopc.General
module Station = Lopc_mva.Station
module Amva = Lopc_mva.Amva
module Experiments = Lopc_repro.Experiments
module Parallel = Lopc_repro.Parallel

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* dune runtest runs the binary in _build/default/test (where the dep
   glob places fixtures/); dune exec runs it from the project root. *)
let fixture_path name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local else Filename.concat "test/fixtures" name

(* --- golden files for the emitters --------------------------------------- *)

(* A small recording touching every event kind, every arg type, JSON
   escaping, and the overflow counter (limit 6, 7 emissions). *)
let golden_recorder () =
  let r = Recorder.create ~limit:6 () in
  Recorder.begin_span r ~ts:0. ~track:0 "W";
  Recorder.counter r ~ts:0.5 ~track:1 "queue" 2.;
  Recorder.begin_span r ~ts:1. ~track:1 "Rq";
  Recorder.instant r ~ts:1.25 ~track:0 "retransmit"
    ~args:
      [
        ("value", Recorder.Num 2.125); ("seq", Recorder.Int 7);
        ("why", Recorder.Str "a \"quoted\"\nline\twith\x01controls");
      ];
  Recorder.end_span r ~ts:2.5 ~track:1 "Rq";
  Recorder.end_span r ~ts:3.75 ~track:0 "W";
  (* Past the limit: counted in [dropped], absent from the stream. *)
  Recorder.instant r ~ts:4. ~track:0 "overflowed";
  r

let check_golden name render fixture =
  let rendered = render (golden_recorder ()) in
  match Sys.getenv_opt "OBS_GOLDEN_WRITE" with
  | Some dir ->
    let path = Filename.concat dir fixture in
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc rendered);
    Printf.eprintf "golden written: %s\n%!" path
  | None ->
    let expected = read_file (fixture_path fixture) in
    Alcotest.(check string) name expected rendered

let test_chrome_golden () =
  check_golden "chrome emitter is byte-stable"
    (fun r -> Format.asprintf "%a" Recorder.pp_chrome r)
    "obs_chrome.golden.json"

let test_text_golden () =
  check_golden "text emitter is byte-stable"
    (fun r -> Format.asprintf "%a" Recorder.pp_text r)
    "obs_text.golden.txt"

let test_write_file_picks_format () =
  let r = golden_recorder () in
  let json_path = Filename.temp_file "lopc_obs" ".json" in
  let txt_path = Filename.temp_file "lopc_obs" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove json_path;
      Sys.remove txt_path)
    (fun () ->
      Recorder.write_file r json_path;
      Recorder.write_file r txt_path;
      Alcotest.(check string)
        "extension .json selects the Chrome emitter"
        (Format.asprintf "%a" Recorder.pp_chrome r)
        (read_file json_path);
      Alcotest.(check string)
        "any other extension selects the text emitter"
        (Format.asprintf "%a" Recorder.pp_text r)
        (read_file txt_path))

(* --- recorder invariants -------------------------------------------------- *)

let test_recorder_rejects_backwards_time () =
  let r = Recorder.create () in
  Recorder.begin_span r ~ts:10. ~track:0 "W";
  Alcotest.check_raises "time must not run backwards"
    (Invalid_argument "Recorder.emit: timestamp went backwards") (fun () ->
      Recorder.end_span r ~ts:9. ~track:0 "W")

let test_recorder_limit_drops () =
  let r = Recorder.create ~limit:3 () in
  for i = 0 to 9 do
    Recorder.instant r ~ts:(Float.of_int i) ~track:0 "tick"
  done;
  Alcotest.(check int) "holds exactly the limit" 3 (Recorder.length r);
  Alcotest.(check int) "counts the discarded rest" 7 (Recorder.dropped r);
  match Recorder.events r with
  | { Recorder.ts = 0.; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest events are the ones kept"

(* --- span well-nesting over arbitrary machine runs ------------------------ *)

let record_run ~nodes ~w ~so ~protocol_processor ~cycles =
  let recorder = Recorder.create () in
  let obs = Sim_probe.create ~recorder ~nodes () in
  let spec =
    Pattern.to_spec ~protocol_processor ~nodes ~work:(D.Exponential w)
      ~handler:(D.Exponential so) ~wire:(D.Constant 10.) Pattern.All_to_all
  in
  let r = Machine.run ~warmup_cycles:0 ~spec ~cycles ~obs () in
  (recorder, obs, r)

(* Stack discipline per track: every End matches the innermost Begin of
   the same name on its track, and nothing is left open at the end
   ([Sim_probe.finish] ran). Returns an error description, or None. *)
let nesting_violation events =
  let max_track =
    List.fold_left (fun acc (e : Recorder.event) -> max acc e.track) 0 events
  in
  let stacks = Array.make (max_track + 1) [] in
  let problem = ref None in
  List.iter
    (fun (e : Recorder.event) ->
      match e.kind with
      | Recorder.Instant | Recorder.Counter -> ()
      | Recorder.Begin -> stacks.(e.track) <- e.name :: stacks.(e.track)
      | Recorder.End -> (
        match stacks.(e.track) with
        | top :: rest when String.equal top e.name -> stacks.(e.track) <- rest
        | top :: _ ->
          if Option.is_none !problem then
            problem :=
              Some
                (Printf.sprintf "track %d: E %s closes open span %s at t=%g"
                   e.track e.name top e.ts)
        | [] ->
          if Option.is_none !problem then
            problem :=
              Some (Printf.sprintf "track %d: E %s with no open span" e.track e.name)))
    events;
  (match !problem with
  | Some _ -> ()
  | None ->
    Array.iteri
      (fun track -> function
        | [] -> ()
        | names ->
          if Option.is_none !problem then
            problem :=
              Some
                (Printf.sprintf "track %d: %d spans left open (%s)" track
                   (List.length names)
                   (String.concat "," names)))
      stacks);
  !problem

let prop_spans_well_nested =
  QCheck.Test.make ~name:"obs: spans well nested and balanced per track" ~count:10
    QCheck.(
      quad (int_range 2 6) (float_range 0. 800.) (float_range 20. 200.) bool)
    (fun (nodes, w, so, protocol_processor) ->
      let recorder, _, _ = record_run ~nodes ~w ~so ~protocol_processor ~cycles:200 in
      match nesting_violation (Recorder.events recorder) with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let prop_timestamps_monotone =
  QCheck.Test.make ~name:"obs: recorded timestamps never decrease" ~count:6
    QCheck.(pair (int_range 2 6) (float_range 0. 800.))
    (fun (nodes, w) ->
      let recorder, _, _ =
        record_run ~nodes ~w ~so:100. ~protocol_processor:false ~cycles:150
      in
      let last = ref Float.neg_infinity in
      List.for_all
        (fun (e : Recorder.event) ->
          let ok = e.ts >= !last in
          last := e.ts;
          ok)
        (Recorder.events recorder))

let test_probe_counts_cycles () =
  let _, obs, r = record_run ~nodes:4 ~w:500. ~so:100. ~protocol_processor:false ~cycles:400 in
  Alcotest.(check int)
    "probe saw every completed cycle" r.Machine.metrics.Metrics.cycles
    (Sim_probe.cycles obs)

(* --- trace identity across --jobs ----------------------------------------- *)

let test_jobs_trace_identity () =
  (* The fault artifact at quick fidelity: small (P=16, 6 points) but
     exercising every emission hook including the fault instants. Point
     tasks own pre-derived streams and per-point recorders, so the
     serial run and the 4-domain run must write byte-identical files. *)
  let sandbox = Filename.temp_file "lopc_obs_jobs" "" in
  Sys.remove sandbox;
  Sys.mkdir sandbox 0o755;
  let j1 = Filename.concat sandbox "trace-j1"
  and j4 = Filename.concat sandbox "trace-j4" in
  let run ~jobs dir =
    Sys.mkdir dir 0o755;
    let plan =
      List.assoc "fault" (Experiments.plans ~fidelity:Quick ~trace_dir:dir ())
    in
    let pool = Parallel.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () -> ignore (Experiments.run_plan ~pool plan))
  in
  run ~jobs:1 j1;
  run ~jobs:4 j4;
  let files = Sys.readdir j1 |> Array.to_list |> List.sort String.compare in
  Alcotest.(check bool) "traces were written" true (List.length files > 0);
  Alcotest.(check (list string))
    "same file set at both job counts" files
    (Sys.readdir j4 |> Array.to_list |> List.sort String.compare);
  List.iter
    (fun f ->
      let a = read_file (Filename.concat j1 f) in
      let b = read_file (Filename.concat j4 f) in
      Alcotest.(check bool)
        (Printf.sprintf "%s identical at --jobs 1 and --jobs 4" f)
        true (String.equal a b))
    files

(* --- series and reservoir ------------------------------------------------- *)

let feq eps name expected actual =
  if
    not
      (Float.abs (expected -. actual) <= eps
      || Float.abs (expected -. actual) <= eps *. Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" name expected actual

let test_series_windows () =
  let s = Series.create ~window:10. () in
  Series.update s ~now:0. 1.;
  Series.update s ~now:5. 3.;
  (* window [0,10): 5 cycles at 1, 5 at 3 -> mean 2 *)
  Series.update s ~now:25. 0.;
  (* window [10,20): all at 3 -> mean 3; [20,25) still open *)
  (match Series.points s with
  | [| (0., w0); (10., w1) |] ->
    feq 1e-12 "first window mean" 2. w0;
    feq 1e-12 "second window mean" 3. w1
  | pts -> Alcotest.failf "expected two closed windows, got %d" (Array.length pts));
  feq 1e-12 "integral splices closed windows and the open one" 65.
    (Series.integral s ~now:25.);
  feq 1e-12 "running average over [0,25]" (65. /. 25.) (Series.average s ~now:25.)

let test_series_rejects_bad_window () =
  Alcotest.check_raises "window must be positive"
    (Invalid_argument "Series.create: window must be positive and finite") (fun () ->
      ignore (Series.create ~window:0. ()))

let test_reservoir_decimates () =
  let r = Reservoir.create ~capacity:8 () in
  for i = 0 to 99 do
    Reservoir.add r ~ts:(Float.of_int i) (Float.of_int i)
  done;
  Alcotest.(check int) "saw the whole stream" 100 (Reservoir.seen r);
  let samples = Array.to_list (Reservoir.samples r) in
  let n = List.length samples in
  Alcotest.(check bool)
    (Printf.sprintf "kept a bounded systematic sample (%d)" n)
    true
    (n >= 2 && n <= 8);
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) samples in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "samples stay time-ordered" sorted samples

(* --- solver telemetry ----------------------------------------------------- *)

let test_probe_residuals_strictly_decrease () =
  (* A converging fig5.2 operating point; damped fixed-point iteration on
     a contraction must show monotonically shrinking residuals. *)
  let params = Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in
  let log, probe = Solver_probe.log () in
  match A.solve_status ~probe ~solve_method:A.Damped_iteration params ~w:1000. with
  | Some s, Fixed_point.Converged _ ->
    Alcotest.(check bool) "at least two iterations" true (Solver_probe.count log >= 2);
    Alcotest.(check bool)
      "max residual strictly decreasing" true
      (Solver_probe.strictly_decreasing log);
    (match Solver_probe.last log with
    | Some ev ->
      feq 1e-6 "last iterate is the solution" s.A.r ev.Solver_probe.iterate.(0);
      (match ev.Solver_probe.hottest with
      | Some (0, u) -> feq 1e-6 "hottest reports So/R" (200. /. s.A.r) u
      | _ -> Alcotest.fail "scalar all-to-all has exactly station 0")
    | None -> Alcotest.fail "log is non-empty")
  | _ -> Alcotest.fail "fig5.2 point must converge"

let test_probe_identifies_saturated_station () =
  (* One station with dominating demand at a large population: the AMVA
     iteration stalls against a tiny budget with that station's implied
     utilization past 1, and the probe's last [hottest] must name the
     same station the Saturated status reports. *)
  let stations =
    [|
      Station.queueing ~demand:5. (); Station.queueing ~demand:120. ();
      Station.queueing ~demand:10. ();
    |]
  in
  let log, probe = Solver_probe.log () in
  match Amva.solve_status ~probe ~think_time:50. ~stations ~population:5000 ~max_iter:3 () with
  | None, Fixed_point.Saturated { station; utilization } ->
    Alcotest.(check int) "the dominant-demand station saturates" 1 station;
    Alcotest.(check bool) "reported at or past full utilization" true (utilization >= 1.);
    (match Solver_probe.hottest log with
    | Some (probe_station, probe_u) ->
      Alcotest.(check int) "probe's last hottest is the same station" station
        probe_station;
      Alcotest.(check bool) "probe saw it past full utilization" true (probe_u >= 1.)
    | None -> Alcotest.fail "probe carried station semantics")
  | _, status ->
    Alcotest.failf "expected Saturated, got %s" (Fixed_point.status_to_string status)

let test_probe_general_saturation () =
  (* The Appendix-A solver: a server node everyone hammers. The
     contention-free starting throughputs imply server utilization past 1,
     so stalling the iteration early yields a Saturated diagnosis — and
     probe and status must agree on which node. *)
  let params = Params.create ~c2:1. ~p:4 ~st:40. ~so:400. () in
  let net =
    {
      G.params;
      protocol_processor = false;
      G.nodes =
        Array.init 4 (fun c ->
            if c = 2 then { G.work = None; visits = Array.make 4 0. }
            else
              {
                G.work = Some 10.;
                visits = Array.init 4 (fun k -> if k = 2 then 1. else 0.);
              });
    }
  in
  let log, probe = Solver_probe.log () in
  match G.solve_status ~probe ~max_iter:5 net with
  | None, Fixed_point.Saturated { station; _ } ->
    Alcotest.(check int) "the hotspot node saturates" 2 station;
    (match Solver_probe.hottest log with
    | Some (probe_station, _) ->
      Alcotest.(check int) "probe agrees on the culprit" station probe_station
    | None -> Alcotest.fail "probe carried node semantics")
  | _, status ->
    Alcotest.failf "expected Saturated, got %s" (Fixed_point.status_to_string status)

let test_probe_is_passive () =
  (* Same outcome with and without a probe attached, bit for bit. *)
  let params = Params.create ~c2:1. ~p:32 ~st:40. ~so:200. () in
  let plain = A.solve params ~w:500. in
  let _, probe = Solver_probe.log () in
  let probed = A.solve ~probe params ~w:500. in
  Alcotest.(check (float 0.)) "identical solution with a probe" plain.A.r probed.A.r

let suite =
  [
    Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
    Alcotest.test_case "text golden" `Quick test_text_golden;
    Alcotest.test_case "write_file by extension" `Quick test_write_file_picks_format;
    Alcotest.test_case "recorder rejects backwards time" `Quick
      test_recorder_rejects_backwards_time;
    Alcotest.test_case "recorder bounds memory" `Quick test_recorder_limit_drops;
    QCheck_alcotest.to_alcotest prop_spans_well_nested;
    QCheck_alcotest.to_alcotest prop_timestamps_monotone;
    Alcotest.test_case "probe counts cycles" `Quick test_probe_counts_cycles;
    Alcotest.test_case "trace identity across --jobs" `Slow test_jobs_trace_identity;
    Alcotest.test_case "series windows" `Quick test_series_windows;
    Alcotest.test_case "series rejects bad window" `Quick test_series_rejects_bad_window;
    Alcotest.test_case "reservoir decimates" `Quick test_reservoir_decimates;
    Alcotest.test_case "solver residuals strictly decrease" `Quick
      test_probe_residuals_strictly_decrease;
    Alcotest.test_case "saturated station identified (AMVA)" `Quick
      test_probe_identifies_saturated_station;
    Alcotest.test_case "saturated node identified (general)" `Quick
      test_probe_general_saturation;
    Alcotest.test_case "probe is passive" `Quick test_probe_is_passive;
  ]
