(* Test runner: aggregates all suites into one alcotest executable. *)

let () =
  Alcotest.run "lopc"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("stats", Test_stats.suite);
      ("numerics", Test_numerics.suite);
      ("mva", Test_mva.suite);
      ("eventsim", Test_eventsim.suite);
      ("topology", Test_topology.suite);
      ("markov", Test_markov.suite);
      ("activemsg", Test_activemsg.suite);
      ("fault", Test_fault.suite);
      ("lopc", Test_lopc.suite);
      ("workloads", Test_workloads.suite);
      ("integration", Test_integration.suite);
      ("parallel", Test_parallel.suite);
      ("robust", Test_robust.suite);
      ("obs", Test_obs.suite);
      ("lint", Test_lint.suite);
      ("lint_typed", Test_lint_typed.suite);
      ("absint", Test_absint.suite);
    ]
