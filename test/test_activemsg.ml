(* Tests for lopc_activemsg: spec construction, simulator exactness in
   contention-free configurations, conservation laws, determinism. *)

module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Welford = Lopc_stats.Welford
module Rng = Lopc_prng.Rng

let feq tol = Alcotest.(check (float tol))

let single_client_spec ?(protocol_processor = false) ~work ~handler ~wire () =
  {
    Spec.nodes = 2;
    threads = [| None; Some { Spec.work; route = (fun _ -> [ 0 ]); window = 1 } |];
    handler;
    reply_handler = handler;
    wire;
    protocol_processor;
    gap = 0.;
    polling = false;
    initial_delay = None;
    barrier = None;
    topology = None;
    fault = None;
  }

let test_contention_free_exact () =
  (* One client, one server, constants: R must be exactly W + 2St + 2So. *)
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 () in
  feq 1e-9 "R exact" 150. (Metrics.mean_response r.Machine.metrics);
  feq 1e-9 "Rw = W" 100. (Welford.mean r.Machine.metrics.Metrics.rw);
  feq 1e-9 "Rq = So" 20. (Welford.mean r.Machine.metrics.Metrics.rq);
  feq 1e-9 "Ry = So" 20. (Welford.mean r.Machine.metrics.Metrics.ry);
  feq 1e-9 "wire = 2 St" 10. (Welford.mean r.Machine.metrics.Metrics.wire_time)

let test_contention_free_throughput_littles_law () =
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 () in
  (* X·R = 1 thread. *)
  feq 1e-6 "Little" 1.
    (Metrics.throughput r.Machine.metrics *. Metrics.mean_response r.Machine.metrics)

let test_utilization_identities () =
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:2000 () in
  let m = r.Machine.metrics in
  (* Per cycle of 150: server busy 20 => avg request util over 2 nodes is
     20/150/2; client reply util 20/150/2; thread util 100/150/2. *)
  feq 1e-6 "Uq" (20. /. 150. /. 2.) (Metrics.avg_request_util m);
  feq 1e-6 "Uy" (20. /. 150. /. 2.) (Metrics.avg_reply_util m);
  feq 1e-6 "thread util" (100. /. 150. /. 2.) (Metrics.avg_thread_util m)

let test_queue_littles_law () =
  (* Qq = lambda * Rq at the server in the deterministic case. *)
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:2000 () in
  let m = r.Machine.metrics in
  feq 1e-6 "Qq via Little" (20. /. 150. /. 2.) (Metrics.avg_request_queue m)

let test_protocol_processor_no_preemption () =
  (* With a protocol processor, handlers never inflate Rw even under heavy
     incoming traffic. *)
  let spec =
    Spec.all_to_all ~protocol_processor:true ~nodes:8 ~work:(D.Constant 100.)
      ~handler:(D.Constant 50.) ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:20_000 () in
  feq 1e-9 "Rw = W exactly" 100. (Welford.mean r.Machine.metrics.Metrics.rw)

let test_message_passing_preemption_inflates_rw () =
  let spec =
    Spec.all_to_all ~nodes:8 ~work:(D.Constant 100.) ~handler:(D.Constant 50.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:20_000 () in
  Alcotest.(check bool) "Rw > W under interrupts" true
    (Welford.mean r.Machine.metrics.Metrics.rw > 100.)

let test_determinism () =
  let mk () =
    Spec.all_to_all ~nodes:4 ~work:(D.Exponential 100.) ~handler:(D.Exponential 20.)
      ~wire:(D.Constant 5.) ()
  in
  let a = Machine.run ~seed:7 ~spec:(mk ()) ~cycles:5000 () in
  let b = Machine.run ~seed:7 ~spec:(mk ()) ~cycles:5000 () in
  feq 0. "identical runs" (Metrics.mean_response a.Machine.metrics)
    (Metrics.mean_response b.Machine.metrics);
  let c = Machine.run ~seed:8 ~spec:(mk ()) ~cycles:5000 () in
  Alcotest.(check bool) "different seed differs" true
    (Metrics.mean_response a.Machine.metrics <> Metrics.mean_response c.Machine.metrics)

let test_handler_service_scv_observed () =
  (* The machine must actually impose the requested handler C². *)
  let spec =
    Spec.all_to_all ~nodes:8 ~work:(D.Exponential 500.)
      ~handler:(D.of_mean_scv ~mean:100. ~scv:0.5) ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:40_000 () in
  let observed = Welford.scv r.Machine.metrics.Metrics.handler_service in
  Alcotest.(check bool) "observed C2 ~ 0.5" true (Float.abs (observed -. 0.5) < 0.05);
  feq 2. "observed mean ~ 100" 100.
    (Float.round (Welford.mean r.Machine.metrics.Metrics.handler_service /. 2.) *. 2.)

let test_multi_hop_wire_count () =
  (* Two hops: wire = 3 traversals (2 requests + 1 reply). *)
  let spec =
    {
      Spec.nodes = 3;
      threads =
        [| Some { Spec.work = D.Constant 50.; route = (fun _ -> [ 1; 2 ]); window = 1 }; None; None |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 7.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~spec ~cycles:500 () in
  feq 1e-9 "3 wire traversals" 21. (Welford.mean r.Machine.metrics.Metrics.wire_time);
  (* Two request handlers, contention free: Rq = 2·So. *)
  feq 1e-9 "Rq sums hops" 20. (Welford.mean r.Machine.metrics.Metrics.rq);
  feq 1e-9 "R full" (50. +. 21. +. 20. +. 10.) (Metrics.mean_response r.Machine.metrics)

let test_self_request_allowed () =
  (* A route to the origin itself runs both handlers locally. *)
  let spec =
    {
      Spec.nodes = 2;
      threads = [| Some { Spec.work = D.Constant 10.; route = (fun _ -> [ 0 ]); window = 1 }; None |];
      handler = D.Constant 3.;
      reply_handler = D.Constant 3.;
      wire = D.Constant 1.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~spec ~cycles:200 () in
  feq 1e-9 "self request cycle" (10. +. 2. +. 6.) (Metrics.mean_response r.Machine.metrics)

let test_round_robin_route_cycles () =
  let route = Spec.round_robin ~nodes:4 ~origin:1 in
  let g = Rng.create 1 in
  let seq = List.concat_map (fun _ -> route g) [ (); (); (); (); (); () ] in
  Alcotest.(check (list int)) "cycles through others" [ 2; 3; 0; 2; 3; 0 ] seq

let test_uniform_other_excludes_origin () =
  let route = Spec.uniform_other ~nodes:5 ~origin:2 in
  let g = Rng.create 3 in
  for _ = 1 to 1000 do
    match route g with
    | [ d ] ->
      if d = 2 || d < 0 || d >= 5 then Alcotest.failf "bad destination %d" d
    | _ -> Alcotest.fail "expected single hop"
  done

let test_hotspot_fraction () =
  let route = Spec.hotspot ~nodes:10 ~origin:1 ~hot:0 ~fraction:0.4 in
  let g = Rng.create 9 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match route g with
    | [ 0 ] -> incr hits
    | [ _ ] -> ()
    | _ -> Alcotest.fail "expected single hop"
  done;
  (* P(hot) = 0.4 + 0.6/9. *)
  let expected = 0.4 +. (0.6 /. 9.) in
  let frac = Float.of_int !hits /. Float.of_int n in
  Alcotest.(check bool) "hot fraction" true (Float.abs (frac -. expected) < 0.02)

let test_spec_validation () =
  (match
     Spec.validate
       {
         Spec.nodes = 0;
         threads = [||];
         handler = D.Constant 1.;
         reply_handler = D.Constant 1.;
         wire = D.Constant 1.;
         protocol_processor = false;
         gap = 0.;
         polling = false;
         initial_delay = None;
         barrier = None;
         topology = None;
         fault = None;
       }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero nodes accepted");
  match
    Spec.validate
      {
        Spec.nodes = 2;
        threads = [| None; None |];
        handler = D.Uniform (5., 1.);
        reply_handler = D.Constant 1.;
        wire = D.Constant 1.;
        protocol_processor = false;
        gap = 0.;
        polling = false;
        initial_delay = None;
        barrier = None;
        topology = None;
        fault = None;
      }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid handler distribution accepted"

let test_run_validation () =
  let spec =
    single_client_spec ~work:(D.Constant 1.) ~handler:(D.Constant 1.) ~wire:(D.Constant 1.) ()
  in
  Alcotest.(check bool) "cycles <= 0 rejected" true
    (try
       ignore (Machine.run ~spec ~cycles:0 ());
       false
     with Invalid_argument _ -> true);
  let no_threads = { spec with Spec.threads = [| None; None |] } in
  Alcotest.(check bool) "threadless machine rejected" true
    (try
       ignore (Machine.run ~spec:no_threads ~cycles:10 ());
       false
     with Invalid_argument _ -> true)

let test_route_out_of_range_rejected () =
  let spec =
    {
      Spec.nodes = 2;
      threads = [| Some { Spec.work = D.Constant 1.; route = (fun _ -> [ 5 ]); window = 1 }; None |];
      handler = D.Constant 1.;
      reply_handler = D.Constant 1.;
      wire = D.Constant 1.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  Alcotest.(check bool) "bad hop rejected" true
    (try
       ignore (Machine.run ~spec ~cycles:10 ());
       false
     with Invalid_argument _ -> true)

let test_client_server_roles () =
  let spec =
    Spec.client_server ~nodes:8 ~servers:3 ~work:(D.Constant 10.) ~handler:(D.Constant 2.)
      ~wire:(D.Constant 1.) ()
  in
  for i = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "node %d is server" i) true
      (spec.Spec.threads.(i) = None)
  done;
  for i = 3 to 7 do
    Alcotest.(check bool) (Printf.sprintf "node %d is client" i) true
      (spec.Spec.threads.(i) <> None)
  done

let test_window_pipeline_exact () =
  (* Window 2, constant distributions, round trip far shorter than W: the
     pipeline fills and the thread never blocks. Each steady-state cycle
     is W plus one reply-handler preemption: X = 1/(W + So). The request
     latency is 2·St + 2·So (no queueing anywhere). *)
  let spec =
    {
      Spec.nodes = 2;
      threads =
        [| None;
           Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 2 } |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~spec ~cycles:2000 () in
  let m = r.Machine.metrics in
  feq 1e-9 "throughput 1/(W+So)" (1. /. 110.) (Metrics.throughput m);
  feq 1e-9 "latency 2St + 2So" 30. (Welford.mean m.Metrics.latency);
  feq 1e-9 "Rw = W + So preemption" 110. (Welford.mean m.Metrics.rw)

let test_window_one_has_blocking_semantics () =
  (* window = 1 must reproduce the blocking numbers exactly. *)
  let spec =
    {
      Spec.nodes = 2;
      threads =
        [| None;
           Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 1 } |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~spec ~cycles:1000 () in
  feq 1e-9 "R = W + 2St + 2So" 130. (Metrics.mean_response r.Machine.metrics);
  feq 1e-9 "latency = R - W" 30. (Welford.mean r.Machine.metrics.Metrics.latency)

let test_window_validation () =
  let spec =
    {
      Spec.nodes = 2;
      threads =
        [| None; Some { Spec.work = D.Constant 1.; route = (fun _ -> [ 0 ]); window = 0 } |];
      handler = D.Constant 1.;
      reply_handler = D.Constant 1.;
      wire = D.Constant 1.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  match Spec.validate spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "window 0 accepted"

let test_window_increases_throughput () =
  let mk window =
    Spec.all_to_all ~window ~nodes:8 ~work:(D.Exponential 500.)
      ~handler:(D.Exponential 100.) ~wire:(D.Constant 20.) ()
  in
  let x window =
    Metrics.throughput (Machine.run ~spec:(mk window) ~cycles:20_000 ()).Machine.metrics
  in
  Alcotest.(check bool) "window 4 beats window 1" true (x 4 > x 1 *. 1.05)

let test_polling_defers_handlers () =
  (* Deterministic scenario: node 1 (W=35) sends to node 0 (W=100), both
     constant. Under polling, node 0 finishes its quantum before serving
     the request, so node 1's first cycle takes
     35 + 5 + (wait 60 + 10) + 5 + 10 = 125; under interrupts it takes
     35 + 5 + 10 + 5 + 10 = 65. *)
  let mk polling =
    {
      Spec.nodes = 3;
      threads =
        [| Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 2 ]); window = 1 };
           Some { Spec.work = D.Constant 35.; route = (fun _ -> [ 0 ]); window = 1 };
           None |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 0.;
      polling;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let first_r polling =
    let r = Machine.run ~warmup_cycles:0 ~spec:(mk polling) ~cycles:1 () in
    Metrics.mean_response r.Machine.metrics
  in
  feq 1e-9 "interrupt first cycle" 65. (first_r false);
  feq 1e-9 "polling first cycle" 125. (first_r true)

let test_polling_never_preempts () =
  (* Under polling Rw never exceeds W plus queue-drain waits at cycle
     start; with constant work the thread quantum itself is never cut. *)
  let spec =
    Spec.all_to_all ~polling:true ~nodes:8 ~work:(D.Constant 300.)
      ~handler:(D.Constant 50.) ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:10_000 () in
  (* The minimum observed Rw must be exactly W (a cycle with no waiting). *)
  feq 1e-9 "min Rw = W" 300. (Welford.min r.Machine.metrics.Metrics.rw)

let test_polling_pp_mutually_exclusive () =
  let spec =
    {
      (Spec.all_to_all ~polling:true ~nodes:4 ~work:(D.Constant 1.)
         ~handler:(D.Constant 1.) ~wire:(D.Constant 1.) ())
      with
      Spec.protocol_processor = true;
    }
  in
  match Spec.validate spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "polling + protocol processor accepted"

let test_gap_serializes_ni () =
  (* Two clients send to one server simultaneously with gap 8: the wire
     arrivals coincide, so the server's receive NI serializes them 8
     apart. Hand-computed first-cycle times: both send at 100, inject by
     108, wire-arrive 113; deliveries at 121 and 129; handlers (2) finish
     123 and 131; reply injections finish 131 and 139; wire-arrive 136
     and 144; client NIs deliver 144 and 152; reply handlers finish 146
     and 154. *)
  let spec =
    {
      Spec.nodes = 3;
      threads =
        [| None;
           Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 1 };
           Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 1 } |];
      handler = D.Constant 2.;
      reply_handler = D.Constant 2.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 8.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~warmup_cycles:0 ~spec ~cycles:2 () in
  feq 1e-9 "mean of 146 and 154" 150. (Metrics.mean_response r.Machine.metrics)

let test_gap_contention_free_exact () =
  (* Single client, constants: R = W + 2·(g + St + g) + 2·So exactly. *)
  let spec =
    {
      Spec.nodes = 2;
      threads = [| None; Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 1 } |];
      handler = D.Constant 20.;
      reply_handler = D.Constant 20.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 3.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault = None;
    }
  in
  let r = Machine.run ~spec ~cycles:500 () in
  feq 1e-9 "R includes four NI passages" (100. +. (2. *. (3. +. 5. +. 3.)) +. 40.)
    (Metrics.mean_response r.Machine.metrics)

let test_gap_zero_unchanged () =
  (* gap = 0 must leave the original numbers untouched. *)
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 () in
  feq 1e-9 "unchanged" 150. (Metrics.mean_response r.Machine.metrics)

let test_trace_collector () =
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let collector, observe = Lopc_activemsg.Trace.collector ~limit:5 () in
  ignore (Machine.run ~warmup_cycles:10 ~on_cycle:observe ~spec ~cycles:50 ());
  let reports = Lopc_activemsg.Trace.reports collector in
  Alcotest.(check int) "bounded at limit" 5 (List.length reports);
  List.iter
    (fun (r : Machine.cycle_report) ->
      Alcotest.(check int) "origin is the client" 1 r.Machine.origin;
      feq 1e-9 "Rw" 100. (r.Machine.sent -. r.Machine.started);
      feq 1e-9 "cycle" 150. (r.Machine.completed -. r.Machine.started);
      Alcotest.(check bool) "measured flag" true r.Machine.measured)
    reports

let test_trace_renders () =
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let collector, observe = Lopc_activemsg.Trace.collector ~limit:3 () in
  ignore (Machine.run ~warmup_cycles:10 ~on_cycle:observe ~spec ~cycles:20 ());
  let rendered =
    Format.asprintf "%a" (Lopc_activemsg.Trace.pp_timeline ~width:40)
      (Lopc_activemsg.Trace.reports collector)
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions the node" true (contains "node" rendered);
  Alcotest.(check bool) "has a legend" true (contains "legend" rendered)

let test_timeline_edge_cases () =
  let render ~width reports =
    Format.asprintf "%a" (Lopc_activemsg.Trace.pp_timeline ~width) reports
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  let report ~started ~sent ~completed =
    {
      Machine.origin = 0;
      started;
      sent;
      completed;
      request_residence = Float.max 0. (completed -. sent -. 10.);
      reply_residence = 5.;
      wire = 5.;
      measured = true;
    }
  in
  Alcotest.(check string) "empty list" "(no cycles collected)\n" (render ~width:40 []);
  (* A single report still gets a legend, a scale line, and one bar. *)
  let one = render ~width:40 [ report ~started:0. ~sent:100. ~completed:180. ] in
  Alcotest.(check bool) "single: legend" true (contains "legend" one);
  Alcotest.(check bool) "single: scale" true (contains "scale" one);
  Alcotest.(check bool) "single: total" true (contains "R = 180.0" one);
  (* width=1 collapses every segment to its one-column floor without
     crashing or dropping the bar delimiters. *)
  let narrow = render ~width:1 [ report ~started:0. ~sent:100. ~completed:180. ] in
  Alcotest.(check bool) "width 1: bar" true (contains "|=" narrow);
  Alcotest.(check bool) "width 1: total" true (contains "R = 180.0" narrow);
  (* A zero-duration cycle must not divide by zero or emit segments. *)
  let degenerate =
    render ~width:1
      [
        {
          Machine.origin = 3;
          started = 7.;
          sent = 7.;
          completed = 7.;
          request_residence = 0.;
          reply_residence = 0.;
          wire = 0.;
          measured = true;
        };
      ]
  in
  Alcotest.(check bool) "degenerate: node line" true (contains "node   3" degenerate);
  Alcotest.(check bool) "degenerate: empty bar" true (contains "||" degenerate)

let test_observer_sees_warmup_flag () =
  let spec =
    single_client_spec ~work:(D.Constant 10.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) ()
  in
  let saw_unmeasured = ref false and saw_measured = ref false in
  let observe (r : Machine.cycle_report) =
    if r.Machine.measured then saw_measured := true else saw_unmeasured := true
  in
  ignore (Machine.run ~warmup_cycles:5 ~on_cycle:observe ~spec ~cycles:5 ());
  Alcotest.(check bool) "observer sees warm-up cycles" true !saw_unmeasured;
  Alcotest.(check bool) "observer sees measured cycles" true !saw_measured

let test_backlog_metrics () =
  (* Contention-free single client: every arrival finds an empty node. *)
  let spec =
    single_client_spec ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 () in
  let m = r.Machine.metrics in
  Alcotest.(check int) "max backlog 1" 1 (Metrics.max_handler_backlog m);
  feq 1e-9 "arrivals find empty nodes" 0. (Welford.mean (Metrics.arrival_backlog m))

let test_backlog_grows_under_load () =
  let spec =
    Spec.all_to_all ~nodes:16 ~work:(D.Exponential 10.) ~handler:(D.Exponential 200.)
      ~wire:(D.Constant 40.) ()
  in
  let r = Machine.run ~spec ~cycles:20_000 () in
  let m = r.Machine.metrics in
  Alcotest.(check bool) "saturated nodes queue deeply" true
    (Metrics.max_handler_backlog m >= 3);
  Alcotest.(check bool) "arrivals see queueing" true
    (Welford.mean (Metrics.arrival_backlog m) > 0.3)

let test_bard_assumption_directly () =
  (* Bard equates the arrival-instant queue with the steady-state queue.
     The Arrival Theorem says an arrival actually sees the N−1-customer
     network, i.e. strictly LESS: measured arrival queues run ~25–40%
     below the time average. This one-sided gap is the root of LoPC's
     documented pessimism (+6% worst case). *)
  let spec =
    Spec.all_to_all ~nodes:16 ~work:(D.Exponential 1000.)
      ~handler:(D.Exponential 200.) ~wire:(D.Constant 40.) ()
  in
  let r = Machine.run ~spec ~cycles:40_000 () in
  let m = r.Machine.metrics in
  let arrival = Welford.mean (Metrics.arrival_backlog m) in
  let steady = Metrics.avg_request_queue m +. Metrics.avg_reply_queue m in
  Alcotest.(check bool) "arrivals see less than steady state" true (arrival < steady);
  Alcotest.(check bool) "but the same order of magnitude" true
    (arrival > 0.4 *. steady)

let test_barrier_preserves_contention_free_schedule () =
  (* Synchronized permutation + constant service: the barrier adds cost
     but the per-cycle response stays exactly contention free, and the
     round cadence is R + cost. *)
  let base =
    Spec.all_to_all ~staggered:true ~nodes:4 ~work:(D.Constant 1000.)
      ~handler:(D.Constant 10.) ~wire:(D.Constant 5.) ()
  in
  let spec = { base with Spec.barrier = Some { Spec.interval = 1; cost = 20. } } in
  let r = Machine.run ~spec ~cycles:2000 () in
  feq 1e-9 "R still contention free" 1030. (Metrics.mean_response r.Machine.metrics);
  feq 1e-6 "cadence includes barrier cost" (4. /. 1050.)
    (Metrics.throughput r.Machine.metrics)

let test_barrier_resynchronizes_jitter () =
  (* With jittered work, per-cycle barriers stop the staggered schedule
     from drifting into the random-arrival regime. *)
  let run barrier =
    let base =
      Spec.all_to_all ~staggered:true ~nodes:16 ~work:(D.Uniform (950., 1050.))
        ~handler:(D.Constant 200.) ~wire:(D.Constant 40.) ()
    in
    let spec = { base with Spec.barrier } in
    Metrics.mean_response (Machine.run ~spec ~cycles:10_000 ()).Machine.metrics
  in
  let without = run None in
  let with_barrier = run (Some { Spec.interval = 1; cost = 0. }) in
  Alcotest.(check bool) "barrier reduces response time" true
    (with_barrier < without -. 50.)

let test_barrier_validation () =
  let base =
    Spec.all_to_all ~nodes:4 ~work:(D.Constant 1.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) ()
  in
  (match Spec.validate { base with Spec.barrier = Some { Spec.interval = 0; cost = 0. } } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interval 0 accepted");
  let windowed =
    Spec.all_to_all ~window:2 ~nodes:4 ~work:(D.Constant 1.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) ()
  in
  match
    Spec.validate { windowed with Spec.barrier = Some { Spec.interval = 1; cost = 0. } }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "barrier + windowed accepted"

let test_run_until_confident () =
  let spec =
    Spec.all_to_all ~nodes:8 ~work:(D.Exponential 500.) ~handler:(D.Exponential 100.)
      ~wire:(D.Constant 20.) ()
  in
  let result, confidence =
    Machine.run_until_confident ~rel_precision:0.01 ~batch_cycles:1_000 ~spec ()
  in
  Alcotest.(check bool) "converged" true confidence.Machine.converged;
  Alcotest.(check bool) "precision met" true
    (confidence.Machine.relative_half_width <= 0.01);
  (* The converged mean must agree with a long fixed-length run. *)
  let long = Machine.run ~spec ~cycles:60_000 () in
  let a = Metrics.mean_response result.Machine.metrics in
  let b = Metrics.mean_response long.Machine.metrics in
  Alcotest.(check bool) "agrees with long run" true (Float.abs (a -. b) /. b < 0.03)

let test_run_until_confident_validation () =
  let spec =
    Spec.all_to_all ~nodes:4 ~work:(D.Constant 10.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) ()
  in
  Alcotest.(check bool) "bad precision rejected" true
    (try
       ignore (Machine.run_until_confident ~rel_precision:0. ~spec ());
       false
     with Invalid_argument _ -> true)

let test_staggered_constant_contention_free () =
  (* Synchronized permutation traffic: every cycle all nodes send at the
     same instant, each to a distinct destination which is itself blocked
     waiting for its own reply. Requests interrupt nobody and never queue,
     so the response time is exactly the contention-free cycle — the
     "carefully scheduled" pattern of the paper's introduction. *)
  let nodes = 4 in
  let spec =
    Spec.all_to_all ~staggered:true ~nodes ~work:(D.Constant 1000.)
      ~handler:(D.Constant 10.) ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:4000 () in
  feq 1e-9 "interleaved => no contention" 1030. (Metrics.mean_response r.Machine.metrics)

(* Simulator conservation laws across random configurations. *)
let prop_littles_law_all_to_all =
  QCheck.Test.make ~name:"sim: X*R = P for blocking all-to-all" ~count:12
    QCheck.(
      quad (int_range 2 12) (float_range 1. 100.) (float_range 5. 300.)
        (float_range 10. 2000.))
    (fun (nodes, st, so, w) ->
      let spec =
        Spec.all_to_all ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
          ~wire:(D.Constant st) ()
      in
      let r = Machine.run ~spec ~cycles:8_000 () in
      let m = r.Machine.metrics in
      (* With blocking threads exactly P customers circulate. *)
      let customers = Metrics.throughput m *. Metrics.mean_response m in
      Float.abs (customers -. Float.of_int nodes) /. Float.of_int nodes < 0.05)

let prop_sim_utilization_conserved =
  QCheck.Test.make ~name:"sim: Uq = Uy = X/P * So (Little at the handlers)" ~count:12
    QCheck.(triple (int_range 2 10) (float_range 20. 300.) (float_range 50. 1500.))
    (fun (nodes, so, w) ->
      let spec =
        Spec.all_to_all ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
          ~wire:(D.Constant 10.) ()
      in
      let r = Machine.run ~spec ~cycles:8_000 () in
      let m = r.Machine.metrics in
      let expected = Metrics.throughput m /. Float.of_int nodes *. so in
      Float.abs (Metrics.avg_request_util m -. expected) /. expected < 0.08
      && Float.abs (Metrics.avg_reply_util m -. expected) /. expected < 0.08)

let prop_sim_response_decomposes =
  QCheck.Test.make ~name:"sim: R = Rw + wire + Rq + Ry per configuration" ~count:12
    QCheck.(triple (int_range 2 10) (float_range 20. 300.) (float_range 0. 1500.))
    (fun (nodes, so, w) ->
      let spec =
        Spec.all_to_all ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
          ~wire:(D.Constant 25.) ()
      in
      let r = Machine.run ~spec ~cycles:8_000 () in
      let m = r.Machine.metrics in
      let parts =
        Welford.mean m.Metrics.rw +. Welford.mean m.Metrics.wire_time
        +. Welford.mean m.Metrics.rq +. Welford.mean m.Metrics.ry
      in
      let whole = Metrics.mean_response m in
      Float.abs (parts -. whole) /. whole < 1e-9)

let suite =
  [
    Alcotest.test_case "contention-free exactness" `Quick test_contention_free_exact;
    Alcotest.test_case "throughput Little's law" `Quick test_contention_free_throughput_littles_law;
    Alcotest.test_case "utilization identities" `Quick test_utilization_identities;
    Alcotest.test_case "queue-length Little's law" `Quick test_queue_littles_law;
    Alcotest.test_case "protocol processor: Rw = W" `Quick test_protocol_processor_no_preemption;
    Alcotest.test_case "message passing: Rw > W" `Quick test_message_passing_preemption_inflates_rw;
    Alcotest.test_case "determinism in seed" `Quick test_determinism;
    Alcotest.test_case "handler C2 is realized" `Slow test_handler_service_scv_observed;
    Alcotest.test_case "multi-hop accounting" `Quick test_multi_hop_wire_count;
    Alcotest.test_case "self-request supported" `Quick test_self_request_allowed;
    Alcotest.test_case "round-robin route" `Quick test_round_robin_route_cycles;
    Alcotest.test_case "uniform_other excludes origin" `Quick test_uniform_other_excludes_origin;
    Alcotest.test_case "hotspot fraction" `Quick test_hotspot_fraction;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "run validation" `Quick test_run_validation;
    Alcotest.test_case "route range checking" `Quick test_route_out_of_range_rejected;
    Alcotest.test_case "client-server roles" `Quick test_client_server_roles;
    Alcotest.test_case "staggered pattern is contention free" `Quick test_staggered_constant_contention_free;
    QCheck_alcotest.to_alcotest prop_littles_law_all_to_all;
    QCheck_alcotest.to_alcotest prop_sim_utilization_conserved;
    QCheck_alcotest.to_alcotest prop_sim_response_decomposes;
    Alcotest.test_case "trace collector" `Quick test_trace_collector;
    Alcotest.test_case "trace renders" `Quick test_trace_renders;
    Alcotest.test_case "timeline edge cases" `Quick test_timeline_edge_cases;
    Alcotest.test_case "observer warm-up flag" `Quick test_observer_sees_warmup_flag;
    Alcotest.test_case "backlog metrics" `Quick test_backlog_metrics;
    Alcotest.test_case "backlog grows under load" `Slow test_backlog_grows_under_load;
    Alcotest.test_case "Bard assumption measured" `Slow test_bard_assumption_directly;
    Alcotest.test_case "barrier keeps schedule contention-free" `Quick test_barrier_preserves_contention_free_schedule;
    Alcotest.test_case "barrier resynchronizes jitter" `Slow test_barrier_resynchronizes_jitter;
    Alcotest.test_case "barrier validation" `Quick test_barrier_validation;
    Alcotest.test_case "gap serializes the NI" `Quick test_gap_serializes_ni;
    Alcotest.test_case "gap contention-free exactness" `Quick test_gap_contention_free_exact;
    Alcotest.test_case "gap zero unchanged" `Quick test_gap_zero_unchanged;
    Alcotest.test_case "run_until_confident" `Slow test_run_until_confident;
    Alcotest.test_case "run_until_confident validation" `Quick test_run_until_confident_validation;
    Alcotest.test_case "polling defers handlers" `Quick test_polling_defers_handlers;
    Alcotest.test_case "polling never preempts" `Quick test_polling_never_preempts;
    Alcotest.test_case "polling + PP rejected" `Quick test_polling_pp_mutually_exclusive;
    Alcotest.test_case "windowed pipeline exactness" `Quick test_window_pipeline_exact;
    Alcotest.test_case "window 1 is blocking" `Quick test_window_one_has_blocking_semantics;
    Alcotest.test_case "window validation" `Quick test_window_validation;
    Alcotest.test_case "window increases throughput" `Slow test_window_increases_throughput;
  ]
