(* Tests for lopc_prng: determinism, uniformity, independence of splits. *)

module Rng = Lopc_prng.Rng
module Splitmix64 = Lopc_prng.Splitmix64
module Xoshiro256 = Lopc_prng.Xoshiro256

let check_float = Alcotest.(check (float 1e-9))

let test_splitmix_deterministic () =
  let a = Splitmix64.create 1234L and b = Splitmix64.create 1234L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Splitmix64.next a <> Splitmix64.next b)

let test_splitmix_copy () =
  let a = Splitmix64.create 7L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix64.next a) (Splitmix64.next b)

let test_splitmix_float_range () =
  let g = Splitmix64.create 99L in
  for _ = 1 to 10_000 do
    let x = Splitmix64.next_float g in
    if not (x >= 0. && x < 1.) then Alcotest.failf "float out of range: %g" x
  done

let test_splitmix_below_bias () =
  let g = Splitmix64.create 5L in
  let counts = Array.make 7 0 in
  let n = 70_000 in
  for _ = 1 to n do
    let v = Splitmix64.next_below g 7 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = Float.of_int n /. 7. in
      if Float.abs (Float.of_int c -. expected) > 5. *. sqrt expected then
        Alcotest.failf "bucket %d count %d too far from %g" i c expected)
    counts

let test_splitmix_below_invalid () =
  let g = Splitmix64.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix64.next_below: bound must be positive")
    (fun () -> ignore (Splitmix64.next_below g 0))

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 42L and b = Xoshiro256.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state is forbidden") (fun () ->
      ignore (Xoshiro256.of_state (0L, 0L, 0L, 0L)))

let test_xoshiro_jump_changes_stream () =
  let a = Xoshiro256.create 42L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let overlap = ref false in
  let first_a = Xoshiro256.next a in
  for _ = 1 to 1000 do
    if Xoshiro256.next b = first_a then overlap := true
  done;
  Alcotest.(check bool) "jumped stream does not reproduce head" false !overlap

let test_rng_mean_variance () =
  let g = Rng.create 7 in
  let n = 100_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Rng.float g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. Float.of_int n in
  let var = (!sumsq /. Float.of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.005);
  Alcotest.(check bool) "variance ~ 1/12" true (Float.abs (var -. (1. /. 12.)) < 0.002)

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child =
    (Rng.split parent
    [@lint.allow
      "rng-stream-discipline"
        "this test is the one legitimate multi-draw owner: it measures the \
         parent/child correlation, so a single consumer draws the whole stream in \
         a loop; there is no second consumer to couple with"])
  in
  (* Correlation between parent and child outputs should be tiny. *)
  let n = 20_000 in
  let sum_xy = ref 0. and sum_x = ref 0. and sum_y = ref 0. in
  for _ = 1 to n do
    let x = Rng.float parent -. 0.5 and y = Rng.float child -. 0.5 in
    sum_xy := !sum_xy +. (x *. y);
    sum_x := !sum_x +. x;
    sum_y := !sum_y +. y
  done;
  let nf = Float.of_int n in
  let cov = (!sum_xy /. nf) -. (!sum_x /. nf *. (!sum_y /. nf)) in
  Alcotest.(check bool) "covariance small" true (Float.abs cov < 0.01)

let test_rng_split_n () =
  let g = Rng.create 3 in
  let streams = Rng.split_n g 8 in
  Alcotest.(check int) "count" 8 (Array.length streams);
  (* All streams distinct in their first output. *)
  let firsts = Array.map Rng.bits64 streams in
  let sorted = Array.copy firsts in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let test_rng_exponential_mean () =
  let g = Rng.create 21 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential g 42.
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean within 2%" true (Float.abs (mean -. 42.) < 0.84)

let test_rng_exponential_positive () =
  let g = Rng.create 23 in
  for _ = 1 to 10_000 do
    if Rng.exponential g 1. < 0. then Alcotest.fail "negative exponential draw"
  done

let test_rng_gaussian_moments () =
  let g = Rng.create 31 in
  let n = 200_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. Float.of_int n in
  let var = !sumsq /. Float.of_int n in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.) < 0.03)

let test_rng_int_range_bounds () =
  let g = Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Rng.int_range g (-3) 9 in
    if v < -3 || v > 9 then Alcotest.failf "out of range: %d" v
  done

let test_rng_bernoulli_extremes () =
  let g = Rng.create 19 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli g 0.);
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli g 1.)
  done

let test_rng_choose_weighted () =
  let g = Rng.create 29 in
  let counts = Array.make 3 0 in
  let n = 90_000 in
  for _ = 1 to n do
    let i = Rng.choose_weighted g [| 1.; 2.; 3. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = Float.of_int counts.(i) /. Float.of_int n in
  Alcotest.(check bool) "w1 ~ 1/6" true (Float.abs (frac 0 -. (1. /. 6.)) < 0.01);
  Alcotest.(check bool) "w2 ~ 2/6" true (Float.abs (frac 1 -. (2. /. 6.)) < 0.01);
  Alcotest.(check bool) "w3 ~ 3/6" true (Float.abs (frac 2 -. (3. /. 6.)) < 0.01)

let test_rng_choose_weighted_invalid () =
  let g = Rng.create 1 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.choose_weighted: weights sum to zero") (fun () ->
      ignore (Rng.choose_weighted g [| 0.; 0. |]))

let test_rng_shuffle_permutation () =
  let g = Rng.create 47 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

(* qcheck properties *)
let prop_int_below_in_range =
  QCheck.Test.make ~name:"int_below always in [0, bound)" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int_below g bound in
      v >= 0 && v < bound)

let prop_float_range =
  QCheck.Test.make ~name:"float_range within bounds" ~count:1000
    QCheck.(triple small_int (float_bound_exclusive 1000.) (float_bound_exclusive 1000.))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let g = Rng.create seed in
      let v = Rng.float_range g lo hi in
      v >= lo && (v < hi || lo = hi))

let suite =
  [
    Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix seed sensitivity" `Quick test_splitmix_seed_sensitivity;
    Alcotest.test_case "splitmix copy" `Quick test_splitmix_copy;
    Alcotest.test_case "splitmix float range" `Quick test_splitmix_float_range;
    Alcotest.test_case "splitmix below unbiased" `Quick test_splitmix_below_bias;
    Alcotest.test_case "splitmix below invalid" `Quick test_splitmix_below_invalid;
    Alcotest.test_case "xoshiro deterministic" `Quick test_xoshiro_deterministic;
    Alcotest.test_case "xoshiro zero state rejected" `Quick test_xoshiro_zero_state_rejected;
    Alcotest.test_case "xoshiro jump changes stream" `Quick test_xoshiro_jump_changes_stream;
    Alcotest.test_case "rng uniform moments" `Quick test_rng_mean_variance;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng split_n distinct" `Quick test_rng_split_n;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng exponential positive" `Quick test_rng_exponential_positive;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng int_range bounds" `Quick test_rng_int_range_bounds;
    Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
    Alcotest.test_case "rng choose_weighted proportions" `Quick test_rng_choose_weighted;
    Alcotest.test_case "rng choose_weighted invalid" `Quick test_rng_choose_weighted_invalid;
    Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_int_below_in_range;
    QCheck_alcotest.to_alcotest prop_float_range;
  ]
