(* Tests for the typed (stage 2) analyses: each interprocedural rule fires
   on a seeded violating fixture with the right rule id and location, stays
   silent on the corresponding clean fixture, renders its reachability /
   witness chain, and honours justified [@lint.allow] attributes read back
   from the source file. Fixtures are typechecked in-process from strings
   (Cmt_loader.typecheck_string), so no _build tree is needed. *)

module Finding = Lopc_analysis.Finding
module Cmt_loader = Lopc_analysis.Cmt_loader
module Typed_driver = Lopc_analysis.Typed_driver
module Driver = Lopc_analysis.Driver

let unit_of ?(modname = "Fixture") ?(source = "lib/fixture/fixture.ml") src =
  match Cmt_loader.typecheck_string ~modname ~source src with
  | Ok u -> u
  | Error msg -> Alcotest.failf "fixture does not typecheck: %s" msg

let analyze ?entries ?modname ?source src =
  Typed_driver.analyze_units ?entries [ unit_of ?modname ?source src ]

let hits name expected findings =
  Alcotest.(check (list (pair string int)))
    name expected
    (List.map (fun (f : Finding.t) -> (f.rule, Finding.line f)) findings)

let message_contains (f : Finding.t) needle =
  let nl = String.length needle and ml = String.length f.message in
  let rec go i = i + nl <= ml && (String.sub f.message i nl = needle || go (i + 1)) in
  go 0

let check_contains name (f : Finding.t) needle =
  if not (message_contains f needle) then
    Alcotest.failf "%s: message %S does not contain %S" name f.message needle

(* --- determinism-taint -------------------------------------------------- *)

let test_taint_wall_clock_fires () =
  let src =
    "let clock () = Sys.time ()\n"
    ^ "let solve_status x = x +. clock ()"
  in
  match analyze src with
  | [ f ] ->
    hits "wall clock reachable from solve_status" [ ("determinism-taint", 1) ] [ f ];
    check_contains "chain names the entry" f "Fixture.solve_status -> Fixture.clock";
    check_contains "source is named" f "Sys.time"
  | fs -> Alcotest.failf "expected one taint finding, got %d" (List.length fs)

let test_taint_unreachable_silent () =
  (* The same source exists but nothing reachable from an entry touches it. *)
  let src =
    "let clock () = Sys.time ()\n"
    ^ "let solve_status x = x +. 1.\n"
    ^ "let _ = clock"
  in
  hits "unreachable wall clock is clean" [] (analyze src)

let test_taint_poly_compare_on_floats () =
  let src =
    "let order (a : float array) = Array.sort compare a\n"
    ^ "let solve_status a = order a; Array.length a"
  in
  match analyze src with
  | [ f ] ->
    hits "polymorphic compare instantiated at float" [ ("determinism-taint", 1) ] [ f ];
    check_contains "float is the reason" f "float"
  | fs -> Alcotest.failf "expected one taint finding, got %d" (List.length fs)

let test_taint_monomorphic_compare_silent () =
  let src =
    "let order (a : float array) = Array.sort Float.compare a\n"
    ^ "let solve_status a = order a; Array.length a"
  in
  hits "Float.compare is deterministic" [] (analyze src)

let test_taint_poly_compare_on_ints_silent () =
  let src =
    "let order (a : int array) = Array.sort compare a\n"
    ^ "let solve_status a = order a; Array.length a"
  in
  hits "polymorphic compare at int is safe" [] (analyze src)

let test_taint_hashtbl_iteration () =
  let src =
    "let total h = Hashtbl.fold (fun _ v acc -> acc +. v) h 0.\n"
    ^ "let solve_status h = total h"
  in
  match analyze src with
  | [ f ] ->
    hits "Hashtbl.fold order leaks into the result" [ ("determinism-taint", 1) ] [ f ];
    check_contains "iteration order is the reason" f "iteration order"
  | fs -> Alcotest.failf "expected one taint finding, got %d" (List.length fs)

let test_taint_global_random () =
  let src =
    "let jitter () = Random.float 1.0\n"
    ^ "let solve_status x = x +. jitter ()"
  in
  hits "global Random reachable from solve_status"
    [ ("determinism-taint", 1) ]
    (analyze src)

let test_taint_record_with_float_field () =
  (* Project type expansion: the comparison is on an abstract-looking record
     whose declaration (same unit) carries a float field. *)
  let src =
    "type obs = { label : string; value : float }\n"
    ^ "let dedup (a : obs) (b : obs) = a = b\n"
    ^ "let solve_status a b = if dedup a b then 1 else 0"
  in
  match analyze src with
  | [ f ] -> hits "float field found by expansion" [ ("determinism-taint", 2) ] [ f ]
  | fs -> Alcotest.failf "expected one taint finding, got %d" (List.length fs)

let test_taint_extra_entry () =
  (* `run` is no entry by name; --entry promotes it. *)
  let src = "let run () = Sys.time ()" in
  hits "no entry, no finding" [] (analyze src);
  hits "--entry promotes the key"
    [ ("determinism-taint", 1) ]
    (analyze ~entries:[ "Fixture.run" ] src)

(* --- exn-escape --------------------------------------------------------- *)

let test_exn_escape_fires () =
  let src =
    "let step x = if x > 10. then raise Exit else x +. 1.\n"
    ^ "let solve_status x = step (step x)"
  in
  match analyze src with
  | [ f ] ->
    hits "Exit escapes through a callee" [ ("exn-escape", 1) ] [ f ];
    check_contains "witness chain" f "Fixture.solve_status -> Fixture.step";
    check_contains "exception is named" f "`Exit`"
  | fs -> Alcotest.failf "expected one escape finding, got %d" (List.length fs)

let test_exn_escape_caught_silent () =
  let src =
    "let step x = if x > 10. then raise Exit else x +. 1.\n"
    ^ "let solve_status x = try step x with Exit -> x"
  in
  hits "handled exception does not escape" [] (analyze src)

let test_exn_escape_invalid_arg_allowed () =
  let src = "let solve_status x = if x < 0. then invalid_arg \"negative\" else x" in
  hits "Invalid_argument is the documented contract" [] (analyze src)

let test_exn_escape_stdlib_raiser () =
  let src = "let solve_status tbl k = Hashtbl.find tbl k" in
  match analyze src with
  | [ f ] ->
    hits "Hashtbl.find's Not_found escapes" [ ("exn-escape", 1) ] [ f ];
    check_contains "Not_found named" f "`Not_found`"
  | fs -> Alcotest.failf "expected one escape finding, got %d" (List.length fs)

let test_exn_escape_wildcard_handler_silent () =
  let src =
    "let step x = if x > 10. then raise Exit else x +. 1.\n"
    ^ "let solve_status x = try step x with _ -> x"
  in
  hits "wildcard handler catches everything" [] (analyze src)

(* --- rng-stream-discipline ---------------------------------------------- *)

let rng_module =
  "module Rng = struct\n"
  ^ "  type t = { mutable s : int }\n"
  ^ "  let create n = { s = n }\n"
  ^ "  let split t = t.s <- t.s + 1; { s = t.s * 7 }\n"
  ^ "  let float t = t.s <- t.s + 1; Float.of_int t.s\n"
  ^ "end\n"

let test_stream_double_use_fires () =
  let src =
    rng_module
    ^ "let pair rng =\n"
    ^ "  let s = Rng.split rng in\n"
    ^ "  (Rng.float s, Rng.float s)"
  in
  match analyze src with
  | [ f ] ->
    hits "two sequential draws from one child" [ ("rng-stream-discipline", 8) ] [ f ];
    check_contains "binding is named" f "stream `s`"
  | fs -> Alcotest.failf "expected one stream finding, got %d" (List.length fs)

let test_stream_one_split_per_consumer_silent () =
  let src =
    rng_module
    ^ "let pair rng =\n"
    ^ "  let s1 = Rng.split rng in\n"
    ^ "  let s2 = Rng.split rng in\n"
    ^ "  (Rng.float s1, Rng.float s2)"
  in
  hits "one consumer per child is the protocol" [] (analyze src)

let test_stream_branch_arms_are_alternatives () =
  let src =
    rng_module
    ^ "let pick rng c =\n"
    ^ "  let s = Rng.split rng in\n"
    ^ "  if c then Rng.float s else -. (Rng.float s)"
  in
  hits "one use on each branch arm is one use" [] (analyze src)

let test_stream_loop_use_fires () =
  let src =
    rng_module
    ^ "let churn rng =\n"
    ^ "  let s = Rng.split rng in\n"
    ^ "  let acc = ref 0. in\n"
    ^ "  for _ = 1 to 3 do acc := !acc +. Rng.float s done;\n"
    ^ "  !acc"
  in
  hits "a loop body multiplies the use" [ ("rng-stream-discipline", 8) ] (analyze src)

(* --- parallel-rng-capture ------------------------------------------------ *)

let parallel_module =
  "module Parallel = struct\n"
  ^ "  type t = int\n"
  ^ "  let run (_ : t) (tasks : (unit -> 'a) array) =\n"
  ^ "    Array.map (fun f -> f ()) tasks\n"
  ^ "end\n"

let rng_array_module =
  (* rng_module plus split_n, the sanctioned per-task carrier. *)
  rng_module ^ "let split_n rng n = Array.init n (fun _ -> Rng.split rng)\n"

let test_par_capture_fires () =
  let src =
    rng_module ^ parallel_module
    ^ "let noisy pool rng =\n"
    ^ "  Parallel.run pool [| (fun () -> Rng.float rng) |]"
  in
  match analyze src with
  | [ f ] ->
    hits "task drawing from a captured generator" [ ("parallel-rng-capture", 13) ] [ f ];
    check_contains "stream is named" f "`rng`";
    check_contains "scheduling is the reason" f "scheduling"
  | fs -> Alcotest.failf "expected one capture finding, got %d" (List.length fs)

let test_par_capture_split_inside_fires () =
  (* Splitting inside the task is just as order-dependent: the split
     itself advances the shared parent. *)
  let src =
    rng_module ^ parallel_module
    ^ "let noisy pool master =\n"
    ^ "  Parallel.run pool [| (fun () -> let s = Rng.split master in Rng.float s) |]"
  in
  match analyze src with
  | [ f ] ->
    hits "task splitting a captured generator" [ ("parallel-rng-capture", 13) ] [ f ];
    check_contains "the captured parent is named" f "`master`"
  | fs -> Alcotest.failf "expected one capture finding, got %d" (List.length fs)

let test_par_capture_presplit_array_silent () =
  let src =
    rng_array_module ^ parallel_module
    ^ "let quiet pool rng =\n"
    ^ "  let streams = split_n rng 4 in\n"
    ^ "  Parallel.run pool (Array.init 4 (fun i -> fun () -> Rng.float streams.(i)))"
  in
  hits "pre-split stream array is the sanctioned pattern" [] (analyze src)

let test_par_capture_construction_time_silent () =
  (* A draw outside any lambda happens serially while the task array is
     built, before the pool sees it. *)
  let src =
    rng_module ^ parallel_module
    ^ "let quiet pool rng =\n"
    ^ "  let x = Rng.float rng in\n"
    ^ "  Parallel.run pool [| (fun () -> x +. 1.) |]"
  in
  hits "construction-time draws are serial" [] (analyze src)

let test_par_capture_outside_runner_silent () =
  (* The same capture shape anywhere other than a Parallel.run/map
     argument is ordinary single-domain code. *)
  let src =
    rng_module
    ^ "let quiet rng =\n"
    ^ "  let f = fun () -> Rng.float rng in\n"
    ^ "  f () +. f ()"
  in
  hits "closures over streams are fine off the pool" [] (analyze src)

(* --- race rules (effect summaries) --------------------------------------- *)

(* Like [parallel_module], plus the [map] runner the seed analysis must
   treat as a task body even when handed a bare toplevel function. *)
let parallel_module_with_map =
  "module Parallel = struct\n"
  ^ "  type t = int\n"
  ^ "  let run (_ : t) (tasks : (unit -> 'a) array) =\n"
  ^ "    Array.map (fun f -> f ()) tasks\n"
  ^ "  let map (_ : t) (f : 'a -> 'b) (xs : 'a array) = Array.map f xs\n"
  ^ "end\n"

let test_race_captured_write_fires () =
  let src =
    parallel_module_with_map
    ^ "let go pool =\n"
    ^ "  let hits = ref 0 in\n"
    ^ "  Parallel.run pool [| (fun () -> hits := !hits + 1) |]"
  in
  match analyze src with
  | [ f ] ->
    hits "task writing a captured ref" [ ("domain-shared-mutation", 9) ] [ f ];
    check_contains "capture is named" f "`hits`";
    check_contains "scheduling is the reason" f "scheduling"
  | fs -> Alcotest.failf "expected one race finding, got %d" (List.length fs)

let test_race_transitive_global_write () =
  (* The write sits two call-graph hops below the task: task -> work ->
     bump -> counter. The summary fixpoint carries it up; the finding
     shows the chain. The transitive *read* of the same counter (bump
     dereferences it) is the escape warning on the same seed. *)
  let src =
    parallel_module_with_map
    ^ "let counter = ref 0\n"
    ^ "let bump () = counter := !counter + 1\n"
    ^ "let work () = bump ()\n"
    ^ "let go pool = Parallel.run pool [| (fun () -> work ()) |]"
  in
  match analyze src with
  | [ race; escape ] ->
    hits "transitive write and read of a module-level ref"
      [ ("domain-shared-mutation", 10); ("mutable-toplevel-escape", 10) ]
      [ race; escape ];
    check_contains "chain crosses both hops" race "Fixture.work -> Fixture.bump";
    check_contains "the global is named" race "Fixture.counter";
    check_contains "kind is named" race "ref cell"
  | fs -> Alcotest.failf "expected two race findings, got %d" (List.length fs)

let test_race_task_local_state_silent () =
  let src =
    parallel_module_with_map
    ^ "let go pool =\n"
    ^ "  Parallel.run pool [| (fun () -> let h = ref 0 in h := 1; !h) |]"
  in
  hits "state allocated inside the task is private" [] (analyze src)

let test_race_atomic_counter_silent () =
  (* The Atomic-protected version of the shared counter: same shape as the
     positive case, sanctioned primitives, no finding. *)
  let src =
    parallel_module_with_map
    ^ "let total = Atomic.make 0\n"
    ^ "let go pool =\n"
    ^ "  Parallel.run pool [| (fun () -> Atomic.incr total) |]"
  in
  hits "Atomic.incr on a shared cell is the sanctioned pattern" [] (analyze src)

let test_race_captured_passed_to_writer () =
  (* The task never writes directly; it hands a captured table to a helper
     whose summary says it writes through its parameters. *)
  let src =
    parallel_module_with_map
    ^ "let record tbl k = Hashtbl.replace tbl k ()\n"
    ^ "let go pool ks =\n"
    ^ "  let seen = Hashtbl.create 8 in\n"
    ^ "  Parallel.run pool (Array.map (fun k -> fun () -> record seen k) ks)"
  in
  match analyze src with
  | [ f ] ->
    hits "captured table handed to a writer" [ ("domain-shared-mutation", 10) ] [ f ];
    check_contains "capture is named" f "`seen`";
    check_contains "writer is named" f "Fixture.record";
    check_contains "kind is named" f "hash table"
  | fs -> Alcotest.failf "expected one race finding, got %d" (List.length fs)

let test_race_construction_time_write_silent () =
  (* Writes before the runner call happen serially on the submitting
     domain; the tasks themselves are pure. *)
  let src =
    parallel_module_with_map
    ^ "let go pool =\n"
    ^ "  let log = ref 0 in\n"
    ^ "  log := 1;\n"
    ^ "  Parallel.run pool [| (fun () -> 2) |]"
  in
  hits "serial writes outside the tasks are fine" [] (analyze src)

let test_race_map_function_seed () =
  (* Parallel.map's task is a bare toplevel function reference — no lambda
     to descend into, the seed comes from the argument itself. *)
  let src =
    parallel_module_with_map
    ^ "let counter = ref 0\n"
    ^ "let tally x = counter := !counter + x; x\n"
    ^ "let go pool xs = Parallel.map pool tally xs"
  in
  match analyze src with
  | [ race; escape ] ->
    hits "bare map function writing a module-level ref"
      [ ("domain-shared-mutation", 9); ("mutable-toplevel-escape", 9) ]
      [ race; escape ];
    check_contains "chain names the function" race "Fixture.tally"
  | fs -> Alcotest.failf "expected two race findings, got %d" (List.length fs)

let test_rmw_param_cell_fires () =
  let src = "let bump c = Atomic.set c (Atomic.get c + 1)" in
  match analyze src with
  | [ f ] ->
    hits "get-then-set on one cell" [ ("atomic-read-modify-write", 1) ] [ f ];
    check_contains "cell is named" f "`c`"
  | fs -> Alcotest.failf "expected one rmw finding, got %d" (List.length fs)

let test_rmw_global_cell_fires () =
  let src =
    "let total = Atomic.make 0\n"
    ^ "let reset_if_big () = if Atomic.get total > 10 then Atomic.set total 0"
  in
  match analyze src with
  | [ f ] ->
    hits "check-then-act on a global cell" [ ("atomic-read-modify-write", 2) ] [ f ];
    check_contains "global is named" f "Fixture.total"
  | fs -> Alcotest.failf "expected one rmw finding, got %d" (List.length fs)

let test_rmw_fetch_and_add_silent () =
  let src =
    "let bump c = ignore (Atomic.fetch_and_add c 1)\n"
    ^ "let peek c = Atomic.get c"
  in
  hits "read-modify-write primitives are atomic" [] (analyze src)

let test_rmw_distinct_cells_silent () =
  let src = "let move a b = Atomic.set b (Atomic.get a)" in
  hits "get and set on different cells is not check-then-act" [] (analyze src)

let test_rmw_fresh_cell_silent () =
  let src =
    "let fresh_cell () = let c = Atomic.make 0 in Atomic.set c 1; Atomic.get c"
  in
  hits "set-after-make is initialisation" [] (analyze src)

let test_escape_transitive_read_fires () =
  let src =
    parallel_module_with_map
    ^ "let cache : (int, int) Hashtbl.t = Hashtbl.create 8\n"
    ^ "let lookup n = Hashtbl.find_opt cache n\n"
    ^ "let go pool = Parallel.run pool [| (fun () -> lookup 3) |]"
  in
  match analyze src with
  | [ f ] ->
    hits "task reads a toplevel table through a helper"
      [ ("mutable-toplevel-escape", 9) ]
      [ f ];
    check_contains "chain names the helper" f "Fixture.lookup";
    check_contains "the table is named" f "Fixture.cache"
  | fs -> Alcotest.failf "expected one escape finding, got %d" (List.length fs)

let test_escape_direct_read_fires () =
  let src =
    parallel_module_with_map
    ^ "let scale = ref 2\n"
    ^ "let go pool = Parallel.run pool [| (fun () -> !scale) |]"
  in
  hits "task dereferencing a module-level ref"
    [ ("mutable-toplevel-escape", 8) ]
    (analyze src)

let test_escape_immutable_toplevel_silent () =
  let src =
    parallel_module_with_map
    ^ "let limit = 42\n"
    ^ "let go pool = Parallel.run pool [| (fun () -> limit + 1) |]"
  in
  hits "immutable toplevels are free to share" [] (analyze src)

(* --- effect footprints ---------------------------------------------------- *)

let test_effects_footprint () =
  let module Callgraph = Lopc_analysis.Callgraph in
  let module Effects = Lopc_analysis.Effects in
  let src =
    "let counter = ref 0\n"
    ^ "let bump () = counter := !counter + 1\n"
    ^ "let work () = bump ()"
  in
  let effects = Effects.analyze (Callgraph.build [ unit_of src ]) in
  let print key =
    let buf = Buffer.create 128 in
    let ppf = Format.formatter_of_buffer buf in
    let found = Effects.print_footprint ppf effects key in
    Format.pp_print_flush ppf ();
    (found, Buffer.contents buf)
  in
  let found, text = print "Fixture.work" in
  Alcotest.(check bool) "known key found" true found;
  Alcotest.(check string) "footprint is stable, writes carried two hops up"
    ("effect footprint of Fixture.work\n"
   ^ "  global writes:  Fixture.counter\n"
   ^ "  global reads:   Fixture.counter\n"
   ^ "  atomic cells:   (none)\n"
   ^ "  foreign writes: no\n"
   ^ "  foreign reads:  no\n")
    text;
  let found, text = print "Fixture.nope" in
  Alcotest.(check bool) "unknown key reported" false found;
  Alcotest.(check string) "unknown key prints nothing" "" text

(* --- functors and first-class modules ------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* `dune runtest` runs the binary in test/, `dune exec` from the root. *)
let fixture_path name =
  if Sys.file_exists (Filename.concat "fixtures" name) then
    Filename.concat "fixtures" name
  else Filename.concat (Filename.concat "test" "fixtures") name

let analyze_fixture_file name =
  let path = fixture_path name in
  Typed_driver.analyze_units [ unit_of ~source:path (read_file path) ]

let test_callgraph_functor_body () =
  (* Definitions inside a functor body are ordinary nodes: the taint entry
     [F.solve_status] reaches [F.clock] through a same-unit reference, and
     the unexpanded application [App] (referenced by [use]) breaks
     nothing. *)
  match analyze_fixture_file "callgraph_functor.ml" with
  | [ f ] ->
    hits "wall clock inside a functor body" [ ("determinism-taint", 11) ] [ f ];
    check_contains "chain stays inside the functor" f
      "Fixture.F.solve_status -> Fixture.F.clock";
    check_contains "source is named" f "Sys.time"
  | fs -> Alcotest.failf "expected one functor finding, got %d" (List.length fs)

let test_callgraph_first_class_module () =
  (* References inside a packed structure roll up into the binding that
     packs it, so taint flows through the first-class module value. *)
  match analyze_fixture_file "callgraph_fcm.ml" with
  | [ f ] ->
    hits "wall clock behind a packed module" [ ("determinism-taint", 12) ] [ f ];
    check_contains "chain goes through the packed binding" f
      "Fixture.solve_status -> Fixture.wall"
  | fs -> Alcotest.failf "expected one fcm finding, got %d" (List.length fs)

let test_local_pack_unpack_silent () =
  let src =
    "module type SRC = sig val now : unit -> float end\n"
    ^ "let solve_status x =\n"
    ^ "  let (module S) = (module struct let now () = 1.0 end : SRC) in\n"
    ^ "  x +. S.now ()"
  in
  hits "a pure local pack/unpack is clean" [] (analyze src)

(* --- missing .cmt inputs -------------------------------------------------- *)

let test_no_cmt_inputs_raises () =
  (* The fixtures directory holds sources but no .cmt files; the typed
     stage must refuse loudly rather than analyse nothing. *)
  Alcotest.check_raises "no .cmt under the roots"
    (Typed_driver.No_cmt_inputs [ "fixtures" ])
    (fun () -> ignore (Typed_driver.analyze_paths [ "fixtures" ]))

(* --- obs-no-wallclock ---------------------------------------------------- *)

let test_obs_wall_clock_fires () =
  let src =
    "let stamp () = Unix.gettimeofday ()\n"
    ^ "let emit buf name = Buffer.add_string buf (name ^ string_of_float (stamp ()))"
  in
  match analyze ~source:"lib/obs/fixture.ml" src with
  | [ f ] ->
    hits "wall clock reachable from an obs emitter" [ ("obs-no-wallclock", 1) ] [ f ];
    check_contains "chain names the emitter" f "Fixture.stamp";
    check_contains "clock is named" f "Unix.gettimeofday"
  | fs -> Alcotest.failf "expected one obs finding, got %d" (List.length fs)

let test_obs_sys_time_fires () =
  let src = "let emit () = Sys.time ()" in
  hits "Sys.time directly in lib/obs"
    [ ("obs-no-wallclock", 1) ]
    (analyze ~source:"lib/obs/fixture.ml" src)

let test_obs_simulated_clock_silent () =
  (* Timestamps threaded in as data are exactly the sanctioned pattern. *)
  let src =
    "let emit buf ~ts name = Buffer.add_string buf (string_of_float ts ^ name)\n"
    ^ "let span buf ~ts name = emit buf ~ts name; emit buf ~ts (name ^ \"/end\")"
  in
  hits "simulated timestamps passed as arguments are clean" []
    (analyze ~source:"lib/obs/fixture.ml" src)

let test_obs_outside_dir_silent () =
  (* The same clock call outside lib/obs is the taint rule's business (and
     only when reachable from its entries), not this rule's. *)
  let src = "let stamp () = Unix.gettimeofday ()" in
  hits "wall clock outside lib/obs is out of scope" []
    (analyze ~source:"lib/fixture/fixture.ml" src)

(* --- unbounded-retry ----------------------------------------------------- *)

let test_retry_unbounded_while_fires () =
  let src =
    "let settle n =\n"
    ^ "  let r = ref n in\n"
    ^ "  while !r > 0 do r := !r - 1 done;\n"
    ^ "  !r\n"
    ^ "let solve_status n = settle n"
  in
  match analyze src with
  | [ f ] ->
    hits "bare while reachable from solve_status" [ ("unbounded-retry", 3) ] [ f ];
    check_contains "chain names the entry" f "Fixture.solve_status -> Fixture.settle"
  | fs -> Alcotest.failf "expected one retry finding, got %d" (List.length fs)

let test_retry_eventsim_dir_is_entry () =
  (* Anything under lib/eventsim is an entry by directory, no name needed. *)
  let src =
    "let drain n =\n"
    ^ "  let r = ref n in\n"
    ^ "  while !r > 0 do r := !r - 1 done;\n"
    ^ "  !r"
  in
  hits "simulator loop flagged by directory"
    [ ("unbounded-retry", 3) ]
    (analyze ~source:"lib/eventsim/fixture.ml" src)

let test_retry_bound_ident_silent () =
  (* The granularity is the definition: any budget-ish identifier in the
     body ([max_iter] here) excuses its loops. *)
  let src =
    "let settle ~max_iter n =\n"
    ^ "  let r = ref n and i = ref 0 in\n"
    ^ "  while !r > 0 && !i < max_iter do incr i; r := !r - 1 done;\n"
    ^ "  !r\n"
    ^ "let solve_status n = settle ~max_iter:8 n"
  in
  hits "a max_* bound in the definition is enough" [] (analyze src)

let test_retry_budget_helper_silent () =
  (* A local helper whose name mentions the budget counts, matching the
     check_budget idiom the solvers use. *)
  let src =
    "let settle ~check_budget n =\n"
    ^ "  let r = ref n in\n"
    ^ "  while !r > 0 do check_budget (); r := !r - 1 done;\n"
    ^ "  !r\n"
    ^ "let solve_status n = settle ~check_budget:(fun () -> ()) n"
  in
  hits "polling a check_budget helper is clean" [] (analyze src)

let test_retry_for_loop_silent () =
  let src =
    "let settle n =\n"
    ^ "  let acc = ref 0 in\n"
    ^ "  for i = 1 to n do acc := !acc + i done;\n"
    ^ "  !acc\n"
    ^ "let solve_status n = settle n"
  in
  hits "for loops are inherently bounded" [] (analyze src)

let test_retry_unreachable_silent () =
  let src =
    "let spin n =\n"
    ^ "  let r = ref n in\n"
    ^ "  while !r > 0 do r := !r - 1 done;\n"
    ^ "  !r\n"
    ^ "let _ = spin"
  in
  hits "a loop no entry reaches is out of scope" [] (analyze src)

(* --- suppression of typed findings -------------------------------------- *)

(* Typed findings are filtered by the [@lint.allow] regions of the source
   file they point into, so the fixture must exist on disk. *)
let with_fixture_file src f =
  let path = Filename.temp_file "lopc_lint_typed" ".ml" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_typed_suppression () =
  let violating which =
    "let clock () = (Sys.time () " ^ which ^ ")\n"
    ^ "let solve_status x = x +. clock ()"
  in
  with_fixture_file (violating {|[@lint.allow "determinism-taint" "fixture"]|})
    (fun path ->
      hits "justified suppression silences the typed finding" []
        (analyze ~source:path (violating {|[@lint.allow "determinism-taint" "fixture"]|})));
  with_fixture_file (violating {|[@lint.allow "exn-escape" "wrong rule"]|})
    (fun path ->
      hits "a suppression naming another rule does not mask"
        [ ("determinism-taint", 1) ]
        (analyze ~source:path (violating {|[@lint.allow "exn-escape" "wrong rule"]|})))

(* --- report stability ---------------------------------------------------- *)

let test_json_stable_across_runs () =
  (* Same fixture, two independent typecheck+analyze passes: the rendered
     JSON must be byte-identical (no ident stamps, hash order or other
     per-run state may leak into the report). *)
  let src =
    "let clock () = Sys.time ()\n"
    ^ "let order (a : float array) = Array.sort compare a\n"
    ^ "let solve_status a = order a; clock ()\n"
    ^ "let solve x = x + 1"
  in
  let render () =
    let findings = analyze src in
    Format.asprintf "%a" (fun ppf -> Driver.report ppf ~format:Driver.Json) findings
  in
  let first = render () in
  let second = render () in
  Alcotest.(check string) "two runs render identically" first second;
  Alcotest.(check bool) "report is non-trivial" true (String.length first > 10)

let test_json_stable_with_race_findings () =
  (* Same guarantee for the effect-summary rules, whose findings carry
     witness chains built from ident-bearing structures. *)
  let src =
    parallel_module_with_map
    ^ "let counter = ref 0\n"
    ^ "let bump () = counter := !counter + 1\n"
    ^ "let go pool = Parallel.run pool [| (fun () -> bump ()) |]\n"
    ^ "let swap c = Atomic.set c (Atomic.get c + 1)"
  in
  let render () =
    let findings = analyze src in
    Format.asprintf "%a" (fun ppf -> Driver.report ppf ~format:Driver.Json) findings
  in
  let first = render () in
  Alcotest.(check string) "two runs render identically" first (render ());
  Alcotest.(check bool) "race findings present" true
    (String.length first > 10)

let test_typed_catalogue () =
  Alcotest.(check (list string))
    "the thirteen typed rules, in catalogue order"
    [
      "determinism-taint"; "exn-escape"; "rng-stream-discipline";
      "parallel-rng-capture"; "obs-no-wallclock"; "unbounded-retry";
      "domain-shared-mutation"; "atomic-read-modify-write";
      "mutable-toplevel-escape"; "probability-range"; "negative-cost";
      "division-by-vanishing"; "unit-mismatch";
    ]
    (List.map (fun (id, _, _) -> id) Typed_driver.catalogue)

let suite =
  [
    Alcotest.test_case "taint: wall clock fires" `Quick test_taint_wall_clock_fires;
    Alcotest.test_case "taint: unreachable silent" `Quick test_taint_unreachable_silent;
    Alcotest.test_case "taint: poly compare on floats" `Quick
      test_taint_poly_compare_on_floats;
    Alcotest.test_case "taint: Float.compare silent" `Quick
      test_taint_monomorphic_compare_silent;
    Alcotest.test_case "taint: poly compare on ints silent" `Quick
      test_taint_poly_compare_on_ints_silent;
    Alcotest.test_case "taint: Hashtbl iteration" `Quick test_taint_hashtbl_iteration;
    Alcotest.test_case "taint: global Random" `Quick test_taint_global_random;
    Alcotest.test_case "taint: float field by expansion" `Quick
      test_taint_record_with_float_field;
    Alcotest.test_case "taint: --entry promotes" `Quick test_taint_extra_entry;
    Alcotest.test_case "exn: escape fires" `Quick test_exn_escape_fires;
    Alcotest.test_case "exn: caught silent" `Quick test_exn_escape_caught_silent;
    Alcotest.test_case "exn: invalid_arg allowed" `Quick
      test_exn_escape_invalid_arg_allowed;
    Alcotest.test_case "exn: stdlib raiser" `Quick test_exn_escape_stdlib_raiser;
    Alcotest.test_case "exn: wildcard handler" `Quick
      test_exn_escape_wildcard_handler_silent;
    Alcotest.test_case "stream: double use fires" `Quick test_stream_double_use_fires;
    Alcotest.test_case "stream: split per consumer" `Quick
      test_stream_one_split_per_consumer_silent;
    Alcotest.test_case "stream: branch arms" `Quick
      test_stream_branch_arms_are_alternatives;
    Alcotest.test_case "stream: loop use fires" `Quick test_stream_loop_use_fires;
    Alcotest.test_case "par: captured draw fires" `Quick test_par_capture_fires;
    Alcotest.test_case "par: captured split fires" `Quick
      test_par_capture_split_inside_fires;
    Alcotest.test_case "par: pre-split array silent" `Quick
      test_par_capture_presplit_array_silent;
    Alcotest.test_case "par: construction-time silent" `Quick
      test_par_capture_construction_time_silent;
    Alcotest.test_case "par: off-pool closure silent" `Quick
      test_par_capture_outside_runner_silent;
    Alcotest.test_case "obs: wall clock fires" `Quick test_obs_wall_clock_fires;
    Alcotest.test_case "obs: Sys.time fires" `Quick test_obs_sys_time_fires;
    Alcotest.test_case "obs: simulated clock silent" `Quick
      test_obs_simulated_clock_silent;
    Alcotest.test_case "obs: outside lib/obs silent" `Quick test_obs_outside_dir_silent;
    Alcotest.test_case "retry: bare while fires" `Quick test_retry_unbounded_while_fires;
    Alcotest.test_case "retry: eventsim dir is entry" `Quick
      test_retry_eventsim_dir_is_entry;
    Alcotest.test_case "retry: bound ident silent" `Quick test_retry_bound_ident_silent;
    Alcotest.test_case "retry: budget helper silent" `Quick
      test_retry_budget_helper_silent;
    Alcotest.test_case "retry: for loop silent" `Quick test_retry_for_loop_silent;
    Alcotest.test_case "retry: unreachable silent" `Quick test_retry_unreachable_silent;
    Alcotest.test_case "race: captured write fires" `Quick
      test_race_captured_write_fires;
    Alcotest.test_case "race: transitive write fires" `Quick
      test_race_transitive_global_write;
    Alcotest.test_case "race: task-local state silent" `Quick
      test_race_task_local_state_silent;
    Alcotest.test_case "race: atomic counter silent" `Quick
      test_race_atomic_counter_silent;
    Alcotest.test_case "race: capture to writer fires" `Quick
      test_race_captured_passed_to_writer;
    Alcotest.test_case "race: construction-time silent" `Quick
      test_race_construction_time_write_silent;
    Alcotest.test_case "race: map function seed" `Quick test_race_map_function_seed;
    Alcotest.test_case "rmw: param cell fires" `Quick test_rmw_param_cell_fires;
    Alcotest.test_case "rmw: global cell fires" `Quick test_rmw_global_cell_fires;
    Alcotest.test_case "rmw: fetch_and_add silent" `Quick test_rmw_fetch_and_add_silent;
    Alcotest.test_case "rmw: distinct cells silent" `Quick
      test_rmw_distinct_cells_silent;
    Alcotest.test_case "rmw: fresh cell silent" `Quick test_rmw_fresh_cell_silent;
    Alcotest.test_case "escape: transitive read fires" `Quick
      test_escape_transitive_read_fires;
    Alcotest.test_case "escape: direct read fires" `Quick test_escape_direct_read_fires;
    Alcotest.test_case "escape: immutable silent" `Quick
      test_escape_immutable_toplevel_silent;
    Alcotest.test_case "effects: footprint dump" `Quick test_effects_footprint;
    Alcotest.test_case "callgraph: functor body" `Quick test_callgraph_functor_body;
    Alcotest.test_case "callgraph: first-class module" `Quick
      test_callgraph_first_class_module;
    Alcotest.test_case "callgraph: local pack silent" `Quick
      test_local_pack_unpack_silent;
    Alcotest.test_case "typed: no .cmt inputs raises" `Quick test_no_cmt_inputs_raises;
    Alcotest.test_case "typed suppression" `Quick test_typed_suppression;
    Alcotest.test_case "json stable across runs" `Quick test_json_stable_across_runs;
    Alcotest.test_case "json stable with race findings" `Quick
      test_json_stable_with_race_findings;
    Alcotest.test_case "typed catalogue" `Quick test_typed_catalogue;
  ]
