(* Tests for the fault-injection layer: config validation, backoff
   schedules, the retry protocol's bookkeeping, deterministic replay
   (including bit-identity of a zero-probability fault config with the
   fault-free baseline), and the analytical companion Lopc.Fault_model. *)

module D = Lopc_dist.Distribution
module Fault = Lopc_activemsg.Fault
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Pattern = Lopc_workloads.Pattern
module Fixed_point = Lopc_numerics.Fixed_point

let feq tol = Alcotest.(check (float tol))
let is_error = function Error _ -> true | Ok _ -> false

(* A two-node client/server machine: the thread on node 1 sends every
   request to node 0. *)
let client_server_spec ?fault ~work ~handler ~wire () =
  {
    Spec.nodes = 2;
    threads = [| None; Some { Spec.work; route = (fun _ -> [ 0 ]); window = 1 } |];
    handler;
    reply_handler = handler;
    wire;
    protocol_processor = false;
    gap = 0.;
    polling = false;
    initial_delay = None;
    barrier = None;
    topology = None;
    fault;
  }

let all_to_all_spec ?fault nodes ~w =
  Pattern.to_spec ?fault ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential 40.)
    ~wire:(D.Constant 10.) Pattern.All_to_all

(* --- config validation -------------------------------------------------- *)

let test_validate () =
  let ok t = Alcotest.(check bool) "valid" false (is_error (Fault.validate ~nodes:4 t)) in
  let bad name t =
    Alcotest.(check bool) name true (is_error (Fault.validate ~nodes:4 t))
  in
  ok (Fault.create ~timeout:100. ());
  ok
    (Fault.create ~drop:0.5 ~duplicate:1. ~delay_epsilon:1.
       ~delay_spike:(D.Exponential 50.)
       ~backoff:(Fault.Exponential { factor = 2.; cap = 16. })
       ~max_tries:1
       ~outages:
         [ { Fault.node = 3; starts = 0.; duration = 10.; kind = Fault.Crash } ]
       ~timeout:1. ());
  bad "drop = 1" (Fault.create ~drop:1. ~timeout:100. ());
  bad "negative drop" (Fault.create ~drop:(-0.1) ~timeout:100. ());
  bad "duplicate > 1" (Fault.create ~duplicate:1.5 ~timeout:100. ());
  bad "zero timeout" (Fault.create ~timeout:0. ());
  bad "infinite timeout" (Fault.create ~timeout:Float.infinity ());
  bad "zero tries" (Fault.create ~max_tries:0 ~timeout:100. ());
  bad "backoff factor < 1"
    (Fault.create ~backoff:(Fault.Exponential { factor = 0.5; cap = 8. }) ~timeout:100. ());
  bad "jitter spread >= 1"
    (Fault.create ~backoff:(Fault.Jittered { spread = 1. }) ~timeout:100. ());
  bad "outage node out of range"
    (Fault.create
       ~outages:[ { Fault.node = 4; starts = 0.; duration = 1.; kind = Fault.Crash } ]
       ~timeout:100. ());
  bad "slowdown < 1"
    (Fault.create
       ~outages:
         [ { Fault.node = 0; starts = 0.; duration = 1.; kind = Fault.Slowdown 0.5 } ]
       ~timeout:100. ())

let test_spec_restrictions () =
  (* Faults require blocking threads... *)
  let windowed =
    {
      (client_server_spec
         ~fault:(Fault.create ~timeout:100. ())
         ~work:(D.Constant 100.) ~handler:(D.Constant 10.) ~wire:(D.Constant 5.) ())
      with
      Spec.threads =
        [| None; Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 2 } |];
    }
  in
  Alcotest.(check bool) "window > 1 rejected" true (is_error (Spec.validate windowed));
  (* ...and the contention-free interconnect. *)
  let t = Lopc_topology.Topology.create ~rows:2 ~nodes:4 ~per_hop:1. ~link_time:1. () in
  let routed =
    {
      Spec.nodes = 4;
      threads =
        [| Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 3 ]); window = 1 };
           None; None; None |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 5.;
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = Some t;
      fault = Some (Fault.create ~timeout:100. ());
    }
  in
  Alcotest.(check bool) "topology rejected" true (is_error (Spec.validate routed))

(* --- backoff schedules -------------------------------------------------- *)

let test_backoff_schedule () =
  let exp2 =
    Fault.create ~backoff:(Fault.Exponential { factor = 2.; cap = 8. }) ~timeout:100. ()
  in
  List.iter
    (fun (try_, expect) ->
      feq 1e-12 (Printf.sprintf "exp try %d" try_) expect
        (Fault.timeout_multiplier exp2 ~try_))
    [ (1, 1.); (2, 2.); (3, 4.); (4, 8.); (5, 8.); (9, 8.) ];
  let fixed = Fault.create ~timeout:100. () in
  feq 1e-12 "fixed" 1. (Fault.timeout_multiplier fixed ~try_:7);
  feq 1e-12 "mean timeout" 400. (Fault.mean_timeout exp2 ~try_:3);
  let jit = Fault.create ~backoff:(Fault.Jittered { spread = 0.25 }) ~timeout:100. () in
  feq 1e-12 "jitter mean multiplier" 1. (Fault.timeout_multiplier jit ~try_:3);
  let rng = Lopc_prng.Rng.create 7 in
  for try_ = 1 to 50 do
    let t = Fault.timeout_for jit ~try_ rng in
    Alcotest.(check bool) "jitter within band" true (t >= 75. && t <= 125.)
  done

let test_outage_windows () =
  let f =
    Fault.create
      ~outages:
        [
          { Fault.node = 1; starts = 100.; duration = 50.; kind = Fault.Crash };
          { Fault.node = 0; starts = 10.; duration = 5.; kind = Fault.Slowdown 4. };
        ]
      ~timeout:100. ()
  in
  Alcotest.(check bool) "crashed inside window" true (Fault.is_crashed f ~node:1 ~now:120.);
  Alcotest.(check bool) "not crashed before" false (Fault.is_crashed f ~node:1 ~now:99.);
  Alcotest.(check bool) "not crashed after" false (Fault.is_crashed f ~node:1 ~now:151.);
  Alcotest.(check bool) "other node unaffected" false (Fault.is_crashed f ~node:0 ~now:120.);
  feq 1e-12 "slowdown inside" 4. (Fault.slowdown_at f ~node:0 ~now:12.);
  feq 1e-12 "slowdown outside" 1. (Fault.slowdown_at f ~node:0 ~now:20.)

(* --- retry protocol bookkeeping ----------------------------------------- *)

let test_retransmits_under_drop () =
  let fault = Fault.create ~drop:0.3 ~max_tries:25 ~timeout:2_000. () in
  let spec =
    client_server_spec ~fault ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:2_000 ~warmup_cycles:0 () in
  let m = r.Machine.metrics in
  Alcotest.(check bool) "retransmits happened" true (m.Metrics.retransmits > 0);
  Alcotest.(check bool) "drops counted" true (m.Metrics.dropped_messages > 0);
  Alcotest.(check bool) "tries inflated" true (Metrics.mean_tries m > 1.);
  (* With a generous budget no cycle is abandoned. *)
  Alcotest.(check int) "no failed cycles" 0 m.Metrics.failed_cycles;
  Alcotest.(check bool) "goodput below offered load" true
    (Metrics.goodput m <= Metrics.offered_load m +. 1e-12);
  (* E[tries] = 1/(1-q) with q = 1 - 0.7^2: mean tries ~ 2.04. *)
  let predicted =
    Lopc.Fault_model.expected_tries
      (Lopc.Fault_model.config ~drop:0.3 ~max_tries:25 ~timeout:2_000. ())
  in
  feq 0.15 "retry inflation matches the geometric prediction" predicted
    (Metrics.mean_tries m)

let test_duplicates_and_stale_replies () =
  let fault = Fault.create ~duplicate:1. ~timeout:1e9 () in
  let spec =
    client_server_spec ~fault ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 ~warmup_cycles:0 () in
  let m = r.Machine.metrics in
  (* Every request arrives twice (one flagged duplicate), every reply
     twice (the second is stale), and nothing is ever retransmitted. *)
  Alcotest.(check bool) "duplicates flagged" true (m.Metrics.duplicate_deliveries > 0);
  Alcotest.(check bool) "stale replies dropped" true (m.Metrics.stale_replies > 0);
  Alcotest.(check int) "no retransmits" 0 m.Metrics.retransmits;
  Alcotest.(check int) "no failed cycles" 0 m.Metrics.failed_cycles

let test_budget_exhaustion () =
  (* Heavy loss against a tiny budget: some cycles must be abandoned, and
     the machine still terminates with the requested completions. *)
  let fault = Fault.create ~drop:0.85 ~max_tries:2 ~timeout:500. () in
  let spec =
    client_server_spec ~fault ~work:(D.Constant 50.) ~handler:(D.Constant 10.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:800 ~warmup_cycles:0 () in
  let m = r.Machine.metrics in
  Alcotest.(check bool) "cycles abandoned" true (m.Metrics.failed_cycles > 0);
  (* q = 1 - (0.15·(...))² is large; the observed failure fraction should
     be in the rough vicinity of the model's q^B. *)
  let c = Lopc.Fault_model.config ~drop:0.85 ~max_tries:2 ~timeout:500. () in
  (* [metrics.cycles] counts answered measured cycles only, so the failure
     fraction is failed / (failed + answered). *)
  let observed =
    Float.of_int m.Metrics.failed_cycles
    /. Float.of_int (m.Metrics.failed_cycles + m.Metrics.cycles)
  in
  feq 0.1 "failure fraction near q^B" (Lopc.Fault_model.failure_probability c) observed

let test_crash_restart_recovery () =
  (* The server is dark for its first 5000 time units; retransmission with
     a budget that outlasts the outage recovers every cycle. *)
  let fault =
    Fault.create ~max_tries:100 ~timeout:200.
      ~outages:[ { Fault.node = 0; starts = 0.; duration = 5_000.; kind = Fault.Crash } ]
      ()
  in
  let spec =
    client_server_spec ~fault ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
      ~wire:(D.Constant 5.) ()
  in
  let r = Machine.run ~spec ~cycles:500 ~warmup_cycles:0 () in
  let m = r.Machine.metrics in
  Alcotest.(check bool) "outage traffic was dropped" true (m.Metrics.dropped_messages > 0);
  Alcotest.(check bool) "retransmission recovered it" true (m.Metrics.retransmits > 0);
  Alcotest.(check int) "no cycle abandoned" 0 m.Metrics.failed_cycles;
  Alcotest.(check int) "all cycles answered" 500 m.Metrics.cycles

let test_slowdown_window () =
  let slow so =
    let fault =
      Fault.create ~max_tries:8 ~timeout:1e9
        ~outages:[ { Fault.node = 0; starts = 0.; duration = 1e12; kind = Fault.Slowdown so } ]
        ()
    in
    let spec =
      client_server_spec ~fault ~work:(D.Constant 100.) ~handler:(D.Constant 20.)
        ~wire:(D.Constant 5.) ()
    in
    let r = Machine.run ~spec ~cycles:300 ~warmup_cycles:0 () in
    Metrics.mean_response r.Machine.metrics
  in
  (* A permanent 1x "slowdown" is the baseline; 5x multiplies only the
     request handler (the slowed server, node 0) — the reply handler runs on
     the healthy client: R = 100 + 10 + 5·20 + 20. *)
  feq 1e-9 "slowdown 1x baseline" 150. (slow 1.);
  feq 1e-9 "slowdown 5x" 230. (slow 5.)

(* --- determinism -------------------------------------------------------- *)

let run_fingerprint ~seed spec =
  let r = Machine.run ~seed ~spec ~cycles:400 () in
  ( Metrics.mean_response r.Machine.metrics,
    r.Machine.final_time,
    r.Machine.events,
    r.Machine.metrics.Metrics.retransmits,
    r.Machine.metrics.Metrics.dropped_messages )

let prop_zero_fault_bit_identical =
  QCheck.Test.make ~name:"fault: zero-probability config is bit-identical to no fault"
    ~count:10
    QCheck.(pair (int_range 2 6) (pair (float_range 50. 800.) (int_range 0 1_000)))
    (fun (nodes, (w, seed)) ->
      let base = Machine.run ~seed ~spec:(all_to_all_spec nodes ~w) ~cycles:400 () in
      let faulty =
        Machine.run ~seed
          ~spec:(all_to_all_spec ~fault:(Fault.create ~timeout:1e12 ()) nodes ~w)
          ~cycles:400 ()
      in
      Float.equal
        (Metrics.mean_response base.Machine.metrics)
        (Metrics.mean_response faulty.Machine.metrics)
      && Float.equal base.Machine.final_time faulty.Machine.final_time
      && base.Machine.events = faulty.Machine.events
      && base.Machine.metrics.Metrics.cycles = faulty.Machine.metrics.Metrics.cycles)

let prop_faulty_replay_deterministic =
  QCheck.Test.make ~name:"fault: same seed replays a faulty run bit-for-bit" ~count:8
    QCheck.(pair (int_range 2 5) (int_range 0 1_000))
    (fun (nodes, seed) ->
      let fault =
        Fault.create ~drop:0.05 ~duplicate:0.1 ~delay_epsilon:0.1
          ~delay_spike:(D.Exponential 300.)
          ~backoff:(Fault.Jittered { spread = 0.3 })
          ~max_tries:12 ~timeout:5_000. ()
      in
      let spec = all_to_all_spec ~fault nodes ~w:300. in
      let a = run_fingerprint ~seed spec in
      let b = run_fingerprint ~seed spec in
      let c = run_fingerprint ~seed:(seed + 1) spec in
      let (ra, ta, ea, xa, da) = a and (rb, tb, eb, xb, db) = b in
      let (_, tc, _, _, _) = c in
      Float.equal ra rb && Float.equal ta tb && ea = eb && xa = xb && da = db
      && not (Float.equal ta tc))

(* --- adversarial specs -------------------------------------------------- *)

let prop_adversarial_specs =
  (* Arbitrary (including nonsensical) fault configs and windows: the spec
     either fails validation with a message, or the machine runs it (the
     documented Invalid_argument contract for bad routes is allowed). *)
  QCheck.Test.make ~name:"fault: arbitrary specs validate or run" ~count:80
    QCheck.(
      pair
        (pair (int_range 1 6) (int_range 1 3))
        (triple (float_range (-0.2) 1.2) (float_range (-100.) 5_000.) (int_range 0 4)))
    (fun ((nodes, window), (drop, timeout, max_tries)) ->
      let fault =
        Fault.create ~drop
          ~duplicate:(Float.abs drop /. 2.)
          ~delay_epsilon:(1.2 -. drop)
          ~delay_spike:(D.Exponential 100.)
          ~max_tries
          ~outages:
            [ { Fault.node = nodes - 1; starts = 0.; duration = 300.; kind = Fault.Crash } ]
          ~timeout ()
      in
      (* [create] performs no range checks — validation is Spec.validate's
         job, which must catch every bad field generated above. *)
      let spec =
        {
          Spec.nodes;
          threads =
            Array.init nodes (fun i ->
                if i = nodes - 1 then
                  Some { Spec.work = D.Exponential 50.; route = (fun _ -> [ 0 ]); window }
                else None);
          handler = D.Exponential 20.;
          reply_handler = D.Exponential 20.;
          wire = D.Constant 5.;
          protocol_processor = false;
          gap = 0.;
          polling = false;
          initial_delay = None;
          barrier = None;
          topology = None;
          fault = Some fault;
        }
      in
      match Spec.validate spec with
      | Error msg -> String.length msg > 0
      | Ok _ -> (
        match Machine.run ~spec ~cycles:40 ~warmup_cycles:0 () with
        | _ -> true
        | exception Invalid_argument _ -> true))

(* --- analytical companion ----------------------------------------------- *)

let prop_model_reduces_to_all_to_all =
  QCheck.Test.make ~name:"fault model: zero faults reduce exactly to All_to_all"
    ~count:50
    QCheck.(
      pair
        (pair (int_range 2 64) (float_range 0. 4.))
        (triple (float_range 1. 200.) (float_range 10. 500.) (float_range 0. 2_000.)))
    (fun ((p, c2), (st, so, w)) ->
      let params = Lopc.Params.create ~c2 ~p ~st ~so () in
      let faulty = Lopc.Fault_model.solve (Lopc.Fault_model.config ~timeout:1_000. ()) params ~w in
      let base = Lopc.All_to_all.solve params ~w in
      Float.abs (faulty.Lopc.Fault_model.r -. base.Lopc.All_to_all.r)
      <= (1e-9 *. base.Lopc.All_to_all.r) +. 1e-9)

let test_model_statuses () =
  let c = Lopc.Fault_model.config ~drop:0.1 ~max_tries:10 ~timeout:5_000. () in
  let params = Lopc.Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  (match Lopc.Fault_model.solve_status c params ~w:1_000. with
  | Some s, Fixed_point.Converged _ ->
    Alcotest.(check bool) "faulty R above reliable R" true
      (s.Lopc.Fault_model.r > (Lopc.All_to_all.solve params ~w:1_000.).Lopc.All_to_all.r)
  | _ -> Alcotest.fail "expected convergence at 10% loss");
  Alcotest.check_raises "invalid config raises"
    (Invalid_argument "Fault_model: drop probability must lie in [0, 1)") (fun () ->
      ignore (Lopc.Fault_model.solve (Lopc.Fault_model.config ~drop:2. ~timeout:100. ()) params ~w:0.))

let suite =
  [
    Alcotest.test_case "fault config validation" `Quick test_validate;
    Alcotest.test_case "faulty spec restrictions" `Quick test_spec_restrictions;
    Alcotest.test_case "backoff schedules" `Quick test_backoff_schedule;
    Alcotest.test_case "outage windows" `Quick test_outage_windows;
    Alcotest.test_case "retransmits under drop" `Quick test_retransmits_under_drop;
    Alcotest.test_case "duplicates and stale replies" `Quick
      test_duplicates_and_stale_replies;
    Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
    Alcotest.test_case "crash-restart recovery" `Quick test_crash_restart_recovery;
    Alcotest.test_case "slowdown window" `Quick test_slowdown_window;
    QCheck_alcotest.to_alcotest prop_zero_fault_bit_identical;
    QCheck_alcotest.to_alcotest prop_faulty_replay_deterministic;
    QCheck_alcotest.to_alcotest prop_adversarial_specs;
    QCheck_alcotest.to_alcotest prop_model_reduces_to_all_to_all;
    Alcotest.test_case "fault model statuses" `Quick test_model_statuses;
  ]
