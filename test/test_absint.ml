(* Tests for the numeric stage (stage 3): qcheck laws for the interval
   lattice (order, join/meet, widening termination, transfer soundness
   against concrete float evaluation, guard-refinement soundness), each
   numeric rule firing on its violating fixture and staying silent on the
   clean one, and the stable [--show-intervals] summary format. Fixtures
   live in [test/fixtures/absint_*.ml] and are typechecked in-process,
   like the stage-2 tests. *)

module Interval = Lopc_analysis.Interval
module Absint = Lopc_analysis.Absint
module Callgraph = Lopc_analysis.Callgraph
module Cmt_loader = Lopc_analysis.Cmt_loader
module Typed_driver = Lopc_analysis.Typed_driver
module Finding = Lopc_analysis.Finding

(* --- fixtures ----------------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* dune runtest runs the binary in _build/default/test (where the dep glob
   places fixtures/); dune exec runs it from the project root. *)
let fixture_path name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local else Filename.concat "test/fixtures" name

let unit_of_fixture name =
  let source = Filename.concat "test/fixtures" name in
  match
    Cmt_loader.typecheck_string ~modname:"Fixture" ~source
      (read_file (fixture_path name))
  with
  | Ok u -> u
  | Error msg -> Alcotest.failf "fixture %s does not typecheck: %s" name msg

let rules_on name =
  Typed_driver.analyze_units ~stage:`Numeric [ unit_of_fixture name ]
  |> List.map (fun (f : Finding.t) -> f.rule)

let fires fixture rule () =
  Alcotest.(check (list string)) fixture [ rule ] (rules_on fixture)

let silent fixture () = Alcotest.(check (list string)) fixture [] (rules_on fixture)

(* --- qcheck: the interval lattice --------------------------------------- *)

(* Bounds drawn from the values where the transfer corner cases live:
   zeros of both signs, the widening thresholds, infinities, and ordinary
   magnitudes; random floats are sanitised of NaN (intervals carry NaN as
   a flag, not a bound). *)
let bound_gen =
  let open QCheck.Gen in
  oneof
    [
      oneofl
        [ neg_infinity; -1e300; -2.5; -1.; -0.5; -0.; 0.; 1e-9; 0.5; 1.; 2.5;
          1e300; infinity ];
      map (fun x -> if Float.is_nan x then 0. else x) float;
    ]

let itv_gen =
  let open QCheck.Gen in
  frequency
    [
      (1, return Interval.bot);
      (1, return Interval.nan_only);
      (1, return Interval.top);
      ( 8,
        map3
          (fun a b nan ->
            let base = Interval.v (Float.min a b) (Float.max a b) in
            if nan then Interval.join base Interval.nan_only else base)
          bound_gen bound_gen bool );
    ]

let arb_itv = QCheck.make ~print:Interval.to_string itv_gen

(* Concrete floats, NaN included: the domain must absorb it. *)
let concrete_gen =
  QCheck.Gen.(oneof [ bound_gen; return Float.nan ])

let arb_concrete =
  QCheck.make ~print:(Printf.sprintf "%h") concrete_gen

let law name count arb f = QCheck.Test.make ~name ~count arb f

let lattice_laws =
  [
    law "join idempotent" 200 arb_itv (fun a -> Interval.(equal (join a a) a));
    law "meet idempotent" 200 arb_itv (fun a -> Interval.(equal (meet a a) a));
    law "join commutative" 200 (QCheck.pair arb_itv arb_itv) (fun (a, b) ->
        Interval.(equal (join a b) (join b a)));
    law "meet commutative" 200 (QCheck.pair arb_itv arb_itv) (fun (a, b) ->
        Interval.(equal (meet a b) (meet b a)));
    law "join associative" 200 (QCheck.triple arb_itv arb_itv arb_itv)
      (fun (a, b, c) -> Interval.(equal (join (join a b) c) (join a (join b c))));
    law "a <= a join b, a meet b <= a" 200 (QCheck.pair arb_itv arb_itv)
      (fun (a, b) -> Interval.(leq a (join a b) && leq (meet a b) a));
    law "leq antisymmetric" 200 (QCheck.pair arb_itv arb_itv) (fun (a, b) ->
        (not (Interval.leq a b && Interval.leq b a)) || Interval.equal a b);
    law "bot and top bracket everything" 200 arb_itv (fun a ->
        Interval.(leq bot a && leq a top));
    law "widen covers its arguments" 200 (QCheck.pair arb_itv arb_itv)
      (fun (a, b) -> Interval.(leq a (widen a b) && leq b (widen a b)));
    (* Termination: from any start, repeatedly widening with any sequence
       of perturbations stabilises in a handful of steps, because each
       unstable bound jumps to the next member of a finite threshold
       set. Six steps is generous: the set has five members per side. *)
    law "widening terminates" 200
      (QCheck.pair arb_itv (QCheck.list_of_size (QCheck.Gen.return 10) arb_itv))
      (fun (start, chain) ->
        let steps = ref 0 in
        let w = ref start in
        List.iter
          (fun x ->
            let next = Interval.widen !w (Interval.join !w x) in
            if not (Interval.equal next !w) then incr steps;
            w := next)
          chain;
        (* After enough inputs the iterate must have stopped moving. *)
        !steps <= 6);
  ]

(* --- qcheck: transfer soundness vs concrete float evaluation ------------ *)

(* x is a member of [join (const x) a] by construction, so evaluating the
   concrete operator on members and checking membership of the abstract
   result exercises the corner evaluation including NaN corners. *)
let around x a = Interval.join (Interval.const x) a

let binary_ops =
  [
    ("add", Interval.add, ( +. ));
    ("sub", Interval.sub, ( -. ));
    ("mul", Interval.mul, ( *. ));
    ("div", Interval.div, ( /. ));
    ("min", Interval.min_, Float.min);
    ("max", Interval.max_, Float.max);
  ]

let unary_ops =
  [
    ("neg", Interval.neg, ( ~-. ));
    ("abs", Interval.abs, Float.abs);
    ("sqrt", Interval.sqrt_, Float.sqrt);
    ("exp", Interval.exp_, Float.exp);
  ]

let transfer_laws =
  List.map
    (fun (name, abstract, concrete) ->
      law ("sound transfer: " ^ name) 500
        (QCheck.quad arb_concrete arb_concrete arb_itv arb_itv)
        (fun (x, y, a, b) ->
          Interval.mem (concrete x y) (abstract (around x a) (around y b))))
    binary_ops
  @ List.map
      (fun (name, abstract, concrete) ->
        law ("sound transfer: " ^ name) 500
          (QCheck.pair arb_concrete arb_itv)
          (fun (x, a) -> Interval.mem (concrete x) (abstract (around x a))))
      unary_ops

let holds cmp x bound =
  match cmp with
  | `Lt -> x < bound
  | `Le -> x <= bound
  | `Gt -> x > bound
  | `Ge -> x >= bound
  | `Eq -> x = bound

let refine_laws =
  [
    (* If the guard holds for a member, the member survives refinement. *)
    law "sound refinement" 500
      (QCheck.quad arb_concrete arb_concrete arb_itv
         (QCheck.oneofl [ `Lt; `Le; `Gt; `Ge; `Eq ]))
      (fun (x, bound, a, cmp) ->
        (not (holds cmp x bound))
        || Interval.mem x
             (Interval.refine (around x a) ~cmp ~bound ~int_typed:false
                ~keep_nan:false));
    law "refinement shrinks" 200
      (QCheck.triple arb_itv arb_concrete
         (QCheck.oneofl [ `Lt; `Le; `Gt; `Ge; `Eq ]))
      (fun (a, bound, cmp) ->
        Float.is_nan bound
        || Interval.leq
             (Interval.refine a ~cmp ~bound ~int_typed:false ~keep_nan:false)
             a);
  ]

(* --- the numeric rules on fixtures -------------------------------------- *)

(* Each bad fixture is decidable only with interval reasoning: the guard
   a syntactic or reachability pass would accept is present, but on one
   side only. *)
let fixture_tests =
  [
    Alcotest.test_case "probability-range fires" `Quick
      (fires "absint_prob_bad.ml" "probability-range");
    Alcotest.test_case "probability-range silent" `Quick
      (silent "absint_prob_good.ml");
    Alcotest.test_case "negative-cost fires" `Quick
      (fires "absint_cost_bad.ml" "negative-cost");
    Alcotest.test_case "negative-cost silent" `Quick (silent "absint_cost_good.ml");
    Alcotest.test_case "division-by-vanishing fires" `Quick
      (fires "absint_div_bad.ml" "division-by-vanishing");
    Alcotest.test_case "division-by-vanishing silent" `Quick
      (silent "absint_div_good.ml");
    Alcotest.test_case "unit-mismatch fires" `Quick
      (fires "absint_unit_bad.ml" "unit-mismatch");
    Alcotest.test_case "unit-mismatch silent" `Quick (silent "absint_unit_good.ml");
  ]

(* --- the --show-intervals summary format --------------------------------- *)

let test_summary_format () =
  let absint = Absint.analyze (Callgraph.build [ unit_of_fixture "absint_summary.ml" ]) in
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  let found = Absint.print_summary ppf absint "Fixture.consume" in
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "key resolves" true found;
  Alcotest.(check string) "stable summary format"
    "interval summary of Fixture.consume\n  param ~q: [0, 1]\n  return: [0, 1]\n"
    (Buffer.contents buf);
  Alcotest.(check bool) "unknown key reports false" false
    (Absint.print_summary ppf absint "Fixture.nope")

let suite =
  List.map QCheck_alcotest.to_alcotest (lattice_laws @ transfer_laws @ refine_laws)
  @ fixture_tests
  @ [ Alcotest.test_case "--show-intervals format" `Quick test_summary_format ]
