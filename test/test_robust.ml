(* The supervised runtime: budgets and cancellation observed by every
   solver and the simulator, the pool supervisor settling scripted chaos
   plans without deadlock or leaked failures, and the degradation cascade
   staying byte-identical across domain counts. Faults here are data
   (Lopc_robust.Chaos plans keyed on iteration counts and task indices),
   never timers, so every failing case replays exactly. *)

module Budget = Lopc_robust.Budget
module Cancel = Lopc_robust.Cancel
module Cascade = Lopc_robust.Cascade
module Chaos = Lopc_robust.Chaos
module Supervisor = Lopc_repro.Supervisor
module Parallel = Lopc_repro.Parallel
module Experiments = Lopc_repro.Experiments
module Table = Lopc_repro.Table
module FP = Lopc_numerics.Fixed_point
module Probe = Lopc_numerics.Solver_probe
module A = Lopc.All_to_all
module G = Lopc.General
module FM = Lopc.Fault_model
module Params = Lopc.Params
module Amva = Lopc_mva.Amva
module Station = Lopc_mva.Station
module Ctmc = Lopc_markov.Ctmc
module Exact = Lopc_markov.Exact_machine
module Machine = Lopc_activemsg.Machine
module Spec = Lopc_activemsg.Spec
module Metrics = Lopc_activemsg.Metrics
module D = Lopc_dist.Distribution

let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. ()

(* --- budgets and tokens -------------------------------------------------- *)

let test_budget_fuel () =
  let b = Budget.create ~fuel:3 () in
  Alcotest.(check (option int)) "full tank" (Some 3) (Budget.remaining b);
  for i = 1 to 3 do
    Alcotest.(check bool) (Printf.sprintf "check %d passes" i) true
      (Budget.check b = None)
  done;
  (match Budget.check b with
  | Some (Budget.Fuel_exhausted { fuel }) ->
    Alcotest.(check int) "original allowance reported" 3 fuel
  | _ -> Alcotest.fail "expected fuel exhaustion");
  Alcotest.(check bool) "exhaustion is sticky" true
    (Budget.check b <> None);
  Alcotest.(check bool) "exhausted flag" true (Budget.exhausted b);
  Alcotest.(check (option int)) "never negative" (Some 0) (Budget.remaining b)

let test_cancel_propagates () =
  let parent = Cancel.create () in
  let child = Cancel.create ~parent () in
  Alcotest.(check bool) "fresh child" false (Cancel.cancelled child);
  Cancel.cancel parent;
  Alcotest.(check bool) "child sees ancestor" true (Cancel.cancelled child);
  (* Cancellation outranks fuel and consumes none. *)
  let b = Budget.create ~fuel:5 ~cancel:child () in
  Alcotest.(check bool) "cancelled before fuel" true
    (Budget.check b = Some Budget.Cancelled);
  Alcotest.(check (option int)) "no fuel consumed" (Some 5) (Budget.remaining b)

(* --- every solver honours its budget ------------------------------------- *)

let slow_map x = (0.9999 *. x) +. 1.

let test_fixed_point_budget () =
  let b = Budget.create ~fuel:10 () in
  match FP.solve_scalar_status ~budget:b ~tol:1e-15 ~f:slow_map 0. with
  | _, FP.Exhausted { iters; reason = Budget.Fuel_exhausted _ } ->
    Alcotest.(check int) "one unit of fuel per iteration" 10 iters
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (FP.status_to_string status)

let test_cancelled_solver_stops_within_one_iteration () =
  let cancel = Cancel.create () in
  let b = Budget.create ~cancel () in
  let probe (ev : Probe.event) = if ev.Probe.iter = 5 then Cancel.cancel cancel in
  match FP.solve_scalar_status ~probe ~budget:b ~tol:1e-15 ~f:slow_map 0. with
  | _, FP.Exhausted { iters; reason = Budget.Cancelled } ->
    Alcotest.(check bool)
      (Printf.sprintf "stopped within one iteration of the flip (iters = %d)" iters)
      true (iters <= 6)
  | _, status -> Alcotest.failf "expected cancellation, got %s" (FP.status_to_string status)

let test_all_to_all_budget () =
  (match A.solve_status ~budget:(Budget.create ~fuel:2 ()) params ~w:1000. with
  | None, FP.Exhausted { reason = Budget.Fuel_exhausted _; _ } -> ()
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (FP.status_to_string status));
  (* A generous budget changes nothing: same evaluation path, same floats. *)
  let unbudgeted =
    match A.solve_status params ~w:1000. with
    | Some s, FP.Converged _ -> s.A.r
    | _ -> Alcotest.fail "reference solve failed"
  in
  match A.solve_status ~budget:(Budget.create ~fuel:1_000_000 ()) params ~w:1000. with
  | Some s, FP.Converged _ ->
    Alcotest.(check (float 0.)) "budgeted = unbudgeted, bit for bit" unbudgeted s.A.r
  | _, status -> Alcotest.failf "expected convergence, got %s" (FP.status_to_string status)

let test_general_budget () =
  match
    G.solve_status ~budget:(Budget.create ~fuel:1 ())
      (G.homogeneous_all_to_all params ~w:1000.)
  with
  | None, FP.Exhausted { iters; reason = Budget.Fuel_exhausted _ } ->
    Alcotest.(check int) "stopped after one iteration" 1 iters
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (FP.status_to_string status)

let test_amva_budget () =
  let stations =
    [| Station.queueing ~demand:2. (); Station.queueing ~demand:3. () |]
  in
  match
    Amva.solve_status ~budget:(Budget.create ~fuel:1 ()) ~stations ~population:8 ()
  with
  | None, FP.Exhausted { reason = Budget.Fuel_exhausted _; _ } -> ()
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (FP.status_to_string status)

let test_fault_model_budget () =
  let c = FM.config ~drop:0.05 ~timeout:5000. () in
  match FM.solve_status ~budget:(Budget.create ~fuel:1 ()) c params ~w:1000. with
  | None, FP.Exhausted { reason = Budget.Fuel_exhausted _; _ } -> ()
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (FP.status_to_string status)

let test_ctmc_budget () =
  (* Fuel is one unit per explored state / power sweep: 5 cannot finish. *)
  (match
     Exact.all_to_all_status ~budget:(Budget.create ~fuel:5 ()) ~p:2 ~w:1000.
       ~so:200. ~st:40. ()
   with
  | None, Ctmc.Exhausted { reason = Budget.Fuel_exhausted _ } -> ()
  | _, status -> Alcotest.failf "expected exhaustion, got %s" (Ctmc.status_to_string status));
  (* A pre-cancelled token stops the exploration on its first poll. *)
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  match
    Exact.all_to_all_status ~budget:(Budget.create ~cancel ()) ~p:2 ~w:1000.
      ~so:200. ~st:40. ()
  with
  | None, Ctmc.Exhausted { reason = Budget.Cancelled } -> ()
  | _, status -> Alcotest.failf "expected cancellation, got %s" (Ctmc.status_to_string status)

let client_spec () =
  {
    Spec.nodes = 2;
    threads =
      [|
        None;
        Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 0 ]); window = 1 };
      |];
    handler = D.Constant 20.;
    reply_handler = D.Constant 20.;
    wire = D.Constant 5.;
    protocol_processor = false;
    gap = 0.;
    polling = false;
    initial_delay = None;
    barrier = None;
    topology = None;
    fault = None;
  }

let test_machine_budget () =
  let spec = client_spec () in
  let run budget = Machine.run ?budget ~warmup_cycles:100 ~spec ~cycles:2000 () in
  (* ~6 events per cycle: 2 000 units of fuel clear the 100-cycle warm-up
     and run out mid-measurement. *)
  let starved = run (Some (Budget.create ~fuel:2000 ())) in
  (match starved.Machine.interrupted with
  | Some (Budget.Fuel_exhausted { fuel }) ->
    Alcotest.(check int) "interrupted by its fuel allowance" 2000 fuel
  | _ -> Alcotest.fail "expected an interrupted run");
  (* The measurement window must close at the stop point: an interrupted
     run's time-averaged readouts (which integrate past the last completed
     cycle) would otherwise see time running backwards. *)
  Alcotest.(check bool) "utilization readable after interruption" true
    (Float.is_finite (Metrics.avg_request_util starved.Machine.metrics));
  (* Fuel is simulation progress: the same starved run replays exactly. *)
  let again = run (Some (Budget.create ~fuel:2000 ())) in
  Alcotest.(check (float 0.)) "starved runs are deterministic"
    (Metrics.mean_response starved.Machine.metrics)
    (Metrics.mean_response again.Machine.metrics);
  (* A budget large enough never to fire leaves the run bit-identical. *)
  let free = run None in
  let roomy = run (Some (Budget.create ~fuel:100_000_000 ())) in
  Alcotest.(check bool) "roomy budget does not interrupt" true
    (roomy.Machine.interrupted = None);
  Alcotest.(check (float 0.)) "budgeted = unbudgeted, bit for bit"
    (Metrics.mean_response free.Machine.metrics)
    (Metrics.mean_response roomy.Machine.metrics)

let test_machine_cancellation () =
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  let r =
    Machine.run ~budget:(Budget.create ~cancel ()) ~spec:(client_spec ())
      ~cycles:2000 ()
  in
  Alcotest.(check bool) "observed within one event" true
    (r.Machine.interrupted = Some Budget.Cancelled)

(* --- the degradation cascade --------------------------------------------- *)

let test_cascade_first_success () =
  let o = Cascade.run [ Cascade.attempt "exact" (fun () -> Ok 1.) ] in
  Alcotest.(check string) "provenance" "exact" o.Cascade.provenance;
  Alcotest.(check (option (float 0.))) "value" (Some 1.) o.Cascade.value;
  Alcotest.(check (list (pair string string))) "no trail" [] o.Cascade.trail

let test_cascade_fallback () =
  let events = ref [] in
  let o =
    Cascade.run
      ~on_event:(fun e -> events := e :: !events)
      [
        Cascade.attempt "exact" (fun () -> Error "state-space");
        Cascade.attempt "amva" (fun () -> Error "exhausted");
        Cascade.attempt "bound" (fun () -> Ok 3.);
      ]
  in
  Alcotest.(check string) "provenance names stage and reason"
    "approx:bound:exhausted" o.Cascade.provenance;
  Alcotest.(check (list (pair string string)))
    "trail in attempt order"
    [ ("exact", "state-space"); ("amva", "exhausted") ]
    o.Cascade.trail;
  Alcotest.(check int) "one event per degradation" 2 (List.length !events)

let test_cascade_all_fail () =
  let saw_exhausted_all = ref false in
  let o =
    Cascade.run
      ~on_event:(function
        | Cascade.Exhausted_all _ -> saw_exhausted_all := true
        | Cascade.Degraded _ -> ())
      [
        Cascade.attempt "exact" (fun () -> Error "state-space");
        Cascade.attempt "bound" (fun () -> Error "diverged");
      ]
  in
  Alcotest.(check string) "failed provenance" Cascade.failed_provenance
    o.Cascade.provenance;
  Alcotest.(check bool) "no value" true (o.Cascade.value = None);
  Alcotest.(check bool) "Exhausted_all observed" true !saw_exhausted_all

let test_cascade_jobs_invariant () =
  (* The whole point of fuel over wall clock: the cascade artifact —
     which degrades through three tiers — renders byte-identically
     however many domains run it. *)
  let render jobs =
    let plan = List.assoc "cascade" (Experiments.plans ()) in
    Parallel.with_pool ~jobs (fun pool ->
        Table.to_csv (Experiments.run_plan ~pool plan))
  in
  Alcotest.(check string) "--jobs 1 = --jobs 8, byte for byte" (render 1) (render 8)

(* --- supervised batches under scripted chaos ----------------------------- *)

(* The harness interprets a Chaos.plan: each of [n] tasks runs up to
   [horizon] budgeted iterations, flipping its own token at the scripted
   iteration, raising when scripted to, and carrying the scripted fuel. *)

let horizon = 50

type task_result = Finished of int | Stopped of Budget.stop_reason

let chaos_task plan i token =
  if Chaos.raises plan i then raise (Chaos.Injected_failure i);
  let budget =
    match Chaos.fuel_for plan i with
    | Some fuel -> Budget.create ~fuel ~cancel:token ()
    | None -> Budget.create ~cancel:token ()
  in
  let iters = ref 0 in
  let result = ref (Finished i) in
  let running = ref true in
  while !running && !iters < horizon do
    (match Chaos.cancel_iteration plan i with
    | Some c when !iters = c -> Cancel.cancel token
    | _ -> ());
    match Budget.check budget with
    | Some reason ->
      result := Stopped reason;
      running := false
    | None -> incr iters
  done;
  !result

(* What the harness above must settle to, computed from the plan alone. *)
let expected_outcome plan i =
  if Chaos.raises plan i then `Raises
  else begin
    let cancel_at =
      match Chaos.cancel_iteration plan i with
      | Some c when c < horizon -> Some c
      | _ -> None
    in
    let fuel_at =
      match Chaos.fuel_for plan i with
      | Some f when f < horizon -> Some f
      | _ -> None
    in
    match (cancel_at, fuel_at) with
    | Some c, Some f when c <= f -> `Cancelled
    | Some _, None -> `Cancelled
    | _, Some _ -> `Fuel
    | None, None -> `Finishes
  end

let outcome_matches plan i = function
  | Supervisor.Failed { exn = Chaos.Injected_failure j; _ } ->
    expected_outcome plan i = `Raises && j = i
  | Supervisor.Failed _ -> false
  | Supervisor.Completed (Finished j) -> expected_outcome plan i = `Finishes && j = i
  | Supervisor.Completed (Stopped Budget.Cancelled) -> expected_outcome plan i = `Cancelled
  | Supervisor.Completed (Stopped (Budget.Fuel_exhausted _)) ->
    expected_outcome plan i = `Fuel
  | Supervisor.Skipped -> false (* Collect_all never skips *)

let plan_arb n =
  QCheck.make ~print:Chaos.plan_to_string
    QCheck.Gen.(
      list_size (0 -- 6)
        (oneof
           [
             map2
               (fun task iteration -> Chaos.Cancel_at_iteration { task; iteration })
               (0 -- (n - 1))
               (0 -- (horizon + 10));
             map (fun t -> Chaos.Raise_at_task t) (0 -- (n - 1));
             map2
               (fun task fuel -> Chaos.Exhaust_fuel_at_point { task; fuel })
               (0 -- (n - 1))
               (0 -- (horizon + 10));
           ]))

let prop_chaos_settles =
  let n = 12 in
  QCheck.Test.make ~name:"chaos: every scripted fault settles as planned" ~count:60
    (plan_arb n)
    (fun plan ->
      Parallel.with_pool ~jobs:4 (fun pool ->
          let monitor = Supervisor.monitor n in
          let outcomes =
            Supervisor.supervise ~pool ~policy:Supervisor.Collect_all ~monitor
              (Array.init n (fun i -> chaos_task plan i))
          in
          Array.length outcomes = n
          && Supervisor.settled monitor = n
          && Supervisor.in_flight monitor = []
          && Array.for_all
               (fun ok -> ok)
               (Array.mapi (fun i o -> outcome_matches plan i o) outcomes)))

let test_chaos_join_reraises_lowest () =
  (* Collect_all is deterministic, so join's choice of failure is too. *)
  let plan = [ Chaos.Raise_at_task 9; Chaos.Raise_at_task 4 ] in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let outcomes =
        Supervisor.supervise ~pool ~policy:Supervisor.Collect_all
          (Array.init 12 (fun i -> chaos_task plan i))
      in
      match Supervisor.join outcomes with
      | _ -> Alcotest.fail "expected the injected failure to re-raise"
      | exception Chaos.Injected_failure i ->
        Alcotest.(check int) "lowest-indexed failure wins" 4 i)

let test_fail_fast_settles_everything () =
  (* Which tasks get skipped is the schedule's business; that every task
     settles and the injected failure is preserved is not. *)
  let plan = [ Chaos.Raise_at_task 3 ] in
  Parallel.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 5 do
        let outcomes =
          Supervisor.supervise ~pool ~policy:Supervisor.Fail_fast
            (Array.init 16 (fun i -> chaos_task plan i))
        in
        Alcotest.(check int) "every task settled" 16 (Array.length outcomes);
        (match outcomes.(3) with
        | Supervisor.Failed { exn = Chaos.Injected_failure 3; _ }
        | Supervisor.Skipped ->
          ()
        | _ -> Alcotest.fail "task 3 must fail or be skipped before starting");
        let failures =
          Array.to_list outcomes
          |> List.filter (function Supervisor.Failed _ -> true | _ -> false)
        in
        Alcotest.(check bool) "at most the one scripted failure" true
          (List.length failures <= 1)
      done)

let test_batch_cancellation_skips () =
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  let outcomes =
    Supervisor.supervise ~cancel (Array.init 4 (fun i -> chaos_task [] i))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Supervisor.Completed (Stopped Budget.Cancelled) | Supervisor.Skipped -> ()
      | _ -> Alcotest.failf "task %d must observe the batch token" i)
    outcomes;
  match Supervisor.join outcomes with
  | _ -> Alcotest.fail "expected join to surface the cancellation"
  | exception Supervisor.Cancelled_task 0 -> ()
  | exception Chaos.Injected_failure _ -> Alcotest.fail "no failure was scripted"

let suite =
  [
    Alcotest.test_case "budget: fuel accounting" `Quick test_budget_fuel;
    Alcotest.test_case "cancel: parent to child" `Quick test_cancel_propagates;
    Alcotest.test_case "fixed point: budget" `Quick test_fixed_point_budget;
    Alcotest.test_case "fixed point: cancel within one iteration" `Quick
      test_cancelled_solver_stops_within_one_iteration;
    Alcotest.test_case "all-to-all: budget" `Quick test_all_to_all_budget;
    Alcotest.test_case "general: budget" `Quick test_general_budget;
    Alcotest.test_case "amva: budget" `Quick test_amva_budget;
    Alcotest.test_case "fault model: budget" `Quick test_fault_model_budget;
    Alcotest.test_case "ctmc: budget and cancel" `Quick test_ctmc_budget;
    Alcotest.test_case "machine: budget" `Quick test_machine_budget;
    Alcotest.test_case "machine: cancellation" `Quick test_machine_cancellation;
    Alcotest.test_case "cascade: first success" `Quick test_cascade_first_success;
    Alcotest.test_case "cascade: fallback provenance" `Quick test_cascade_fallback;
    Alcotest.test_case "cascade: all stages fail" `Quick test_cascade_all_fail;
    Alcotest.test_case "cascade: jobs invariant" `Quick test_cascade_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_chaos_settles;
    Alcotest.test_case "chaos: join re-raises lowest" `Quick
      test_chaos_join_reraises_lowest;
    Alcotest.test_case "chaos: fail-fast settles everything" `Quick
      test_fail_fast_settles_everything;
    Alcotest.test_case "chaos: batch cancellation" `Quick test_batch_cancellation_skips;
  ]
