(* Benchmark harness.

   Usage:
     main.exe                 reproduce every table/figure (full fidelity)
     main.exe --quick         same, with shorter simulations
     main.exe fig5.2 fig6.2   reproduce selected artifacts
     main.exe --csv DIR       additionally write each table as DIR/<name>.csv
     main.exe micro           run the Bechamel micro-benchmarks
     main.exe --list          list artifact names *)

module Experiments = Lopc_repro.Experiments
module Table = Lopc_repro.Table

let artifact_names =
  [
    "table3.1"; "fig5.1"; "fig5.2"; "fig5.3"; "table5.3"; "fig6.2";
    "ablate.arrival"; "ablate.priority"; "ablate.scv"; "ablate.solvers";
    "shared-memory"; "windowed"; "notification"; "ablate.multiserver"; "gap";
    "assumptions"; "network"; "exact"; "fault";
  ]

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let params = Lopc.Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in
  let cs_params = Lopc.Params.create ~c2:1. ~p:32 ~st:40. ~so:131. () in
  let general = Lopc.General.homogeneous_all_to_all params ~w:1000. in
  let stations =
    Array.init 8 (fun _ -> Lopc_mva.Station.queueing ~demand:16.4 ())
  in
  let sim_spec =
    Lopc_workloads.Pattern.to_spec ~nodes:16
      ~work:(Lopc_dist.Distribution.Exponential 1000.)
      ~handler:(Lopc_dist.Distribution.Constant 200.)
      ~wire:(Lopc_dist.Distribution.Constant 40.)
      Lopc_workloads.Pattern.All_to_all
  in
  let rng = Lopc_prng.Rng.create 1 in
  let quartic = Lopc.All_to_all.quartic params ~w:1000. in
  [
    Test.make ~name:"all_to_all.solve (Brent)"
      (Staged.stage (fun () -> Lopc.All_to_all.solve params ~w:1000.));
    Test.make ~name:"all_to_all.solve (iteration)"
      (Staged.stage (fun () ->
           Lopc.All_to_all.solve ~solve_method:Lopc.All_to_all.Damped_iteration params
             ~w:1000.));
    Test.make ~name:"all_to_all.solve (polynomial)"
      (Staged.stage (fun () ->
           Lopc.All_to_all.solve ~solve_method:Lopc.All_to_all.Polynomial_roots params
             ~w:1000.));
    Test.make ~name:"client_server.throughput_curve (31 points)"
      (Staged.stage (fun () -> Lopc.Client_server.throughput_curve cs_params ~w:1000.));
    Test.make ~name:"general.solve (32 nodes)"
      (Staged.stage (fun () -> Lopc.General.solve general));
    Test.make ~name:"exact_mva.solve (N=64, 8 stations)"
      (Staged.stage (fun () ->
           Lopc_mva.Exact_mva.solve ~think_time:1211. ~stations ~population:64 ()));
    Test.make ~name:"simulator (16 nodes, 1000 cycles)"
      (Staged.stage (fun () ->
           Lopc_activemsg.Machine.run ~warmup_cycles:200 ~spec:sim_spec ~cycles:1000 ()));
    Test.make ~name:"rng.float x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Lopc_prng.Rng.float rng)
           done));
    Test.make ~name:"polynomial.real_roots (quartic)"
      (Staged.stage (fun () -> Lopc_numerics.Polynomial.real_roots quartic));
    Test.make ~name:"windowed.solve (window 4)"
      (Staged.stage (fun () -> Lopc.Windowed.solve ~window:4 params ~w:1000.));
    Test.make ~name:"gap.solve (g=50)"
      (Staged.stage (fun () -> Lopc.Gap.solve ~gap:50. params ~w:1000.));
    Test.make ~name:"torus.solve (4x8)"
      (Staged.stage
         (let topo =
            Lopc_topology.Topology.create ~nodes:32 ~per_hop:10. ~link_time:50. ()
          in
          let no_st = Lopc.Params.create ~c2:0. ~p:32 ~st:0. ~so:200. () in
          fun () -> Lopc.Torus.solve no_st ~topology:topo ~w:1000.));
    Test.make ~name:"exact CTMC (P=3)"
      (Staged.stage (fun () ->
           Lopc_markov.Exact_machine.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. ()));
  ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  print_endline "## Micro-benchmarks (monotonic clock, ns/run)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "%-45s %12.1f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name;
          ignore raw)
        results)
    (micro_tests ())

(* --- reproduction driver -------------------------------------------------- *)

let emit ~csv_dir (name, table) =
  Format.printf "%a@." Table.pp table;
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Table.to_csv table);
    close_out oc;
    Format.printf "(csv written to %s)@.@." path

let main () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let rec parse_csv = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> parse_csv rest
    | [] -> None
  in
  let csv_dir = parse_csv args in
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | Some _ | None -> ());
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
    |> List.filter (fun a -> Some a <> csv_dir)
  in
  let fidelity = if quick then Experiments.Quick else Experiments.Full in
  if List.mem "--list" args then
    List.iter print_endline ("micro" :: artifact_names)
  else if selected = [] then begin
    let t0 = Unix.gettimeofday () in
    List.iter (emit ~csv_dir) (Experiments.all ~fidelity ());
    Printf.printf "reproduced %d artifacts in %.1fs\n" (List.length artifact_names)
      (Unix.gettimeofday () -. t0)
  end
  else
    List.iter
      (fun name ->
        match name with
        | "micro" -> run_micro ()
        | "table3.1" -> emit ~csv_dir (name, Experiments.table3_1 ())
        | "fig5.1" -> emit ~csv_dir (name, Experiments.fig5_1 ())
        | "fig5.2" -> emit ~csv_dir (name, Experiments.fig5_2 ~fidelity ())
        | "fig5.3" -> emit ~csv_dir (name, Experiments.fig5_3 ~fidelity ())
        | "table5.3" -> emit ~csv_dir (name, Experiments.table5_3 ~fidelity ())
        | "fig6.2" -> emit ~csv_dir (name, Experiments.fig6_2 ~fidelity ())
        | "ablate.arrival" -> emit ~csv_dir (name, Experiments.ablation_arrival_theorem ())
        | "ablate.priority" -> emit ~csv_dir (name, Experiments.ablation_priority ())
        | "ablate.scv" -> emit ~csv_dir (name, Experiments.ablation_scv_correction ~fidelity ())
        | "ablate.solvers" -> emit ~csv_dir (name, Experiments.ablation_solvers ())
        | "shared-memory" -> emit ~csv_dir (name, Experiments.shared_memory_comparison ~fidelity ())
        | "windowed" -> emit ~csv_dir (name, Experiments.windowed_speedup ~fidelity ())
        | "notification" -> emit ~csv_dir (name, Experiments.notification_modes ~fidelity ())
        | "ablate.multiserver" -> emit ~csv_dir (name, Experiments.ablation_multiserver ())
        | "gap" -> emit ~csv_dir (name, Experiments.gap_study ~fidelity ())
        | "assumptions" -> emit ~csv_dir (name, Experiments.assumptions_audit ~fidelity ())
        | "network" -> emit ~csv_dir (name, Experiments.network_contention ~fidelity ())
        | "exact" -> emit ~csv_dir (name, Experiments.exact_comparison ~fidelity ())
        | "fault" -> emit ~csv_dir (name, Experiments.fault_sweep ~fidelity ())
        | other ->
          Printf.eprintf "unknown artifact %S; try --list\n" other;
          exit 1)
      selected

let () =
  try main () with
  | Lopc_numerics.Fixed_point.Diverged msg ->
    (* A diverged/saturated solver is a structured outcome, not a crash:
       name it and fail the run. *)
    Printf.eprintf "solver outcome: %s\n" msg;
    exit 1
