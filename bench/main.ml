(* Benchmark harness.

   Usage:
     main.exe                 reproduce every table/figure (full fidelity)
     main.exe --quick         same, with shorter simulations
     main.exe --jobs N        fan replications across N domains (default: all cores)
     main.exe fig5.2 fig6.2   reproduce selected artifacts
     main.exe --csv DIR       additionally write each table as DIR/<name>.csv
     main.exe --trace-dir DIR write per-point Chrome traces for the simulated
                              artifacts (fig5.2, fig6.2, fault) into DIR
     main.exe micro           run the Bechamel micro-benchmarks
     main.exe --list          list artifact names

   Tables go to stdout; timing goes to stderr so that full-run stdout is
   byte-comparable across runs and across --jobs settings. Full runs also
   write BENCH_<gitsha>.json with micro ns/run estimates and per-artifact
   wall-clock times. *)

module Experiments = Lopc_repro.Experiments
module Parallel = Lopc_repro.Parallel
module Table = Lopc_repro.Table

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

(* The typed lint pass (cmt load + call graph + effect fixpoint + every
   rule) as a micro line, so analysis-cost regressions show up in
   BENCH_<gitsha>.json next to the solver numbers. Only present when the
   .cmt trees exist — `main.exe micro` from a source checkout without a
   build simply omits the line. *)
let lint_typed_test () =
  let open Bechamel in
  let roots =
    List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples"; "test" ]
  in
  match Lopc_analysis.Typed_driver.analyze_paths roots with
  | exception _ -> []
  | _ ->
    [
      Test.make ~name:"lint_typed (full tree)"
        (Staged.stage (fun () ->
             ignore (Lopc_analysis.Typed_driver.analyze_paths roots)));
      Test.make ~name:"lint_absint (full tree)"
        (Staged.stage (fun () ->
             ignore (Lopc_analysis.Typed_driver.analyze_paths ~stage:`Numeric roots)));
    ]

(* The per-file syntactic stage at 1 and 4 worker domains: the pair in
   BENCH_<gitsha>.json is the record that --jobs actually pays off (the
   outputs themselves are byte-identical — test_lint checks that). *)
let lint_syntactic_tests () =
  let open Bechamel in
  let roots =
    List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples"; "test" ]
  in
  if roots = [] then []
  else
    let run jobs () =
      ignore
        (if jobs <= 1 then Lopc_analysis.Driver.lint_paths roots
         else
           Lopc_analysis.Driver.lint_paths
             ~map_tasks:(fun tasks ->
               Parallel.with_pool ~jobs (fun pool -> Parallel.run pool tasks))
             roots)
    in
    [
      Test.make ~name:"lint_syntactic (jobs 1)" (Staged.stage (run 1));
      Test.make ~name:"lint_syntactic (jobs 4)" (Staged.stage (run 4));
    ]

(* Deterministic pseudo-random event times for the queue micros (Lehmer
   LCG, fixed seed): every run measures the same push/pop sequence, and
   the heap and calendar lines see identical workloads. *)
let queue_times n =
  let state = ref 1 in
  Array.init n (fun _ ->
      state := !state * 48271 mod 0x7FFFFFFF;
      Float.of_int !state /. 1e6)

(* The two pending-event structures on the two shapes the simulator
   produces: a drain (fault storms, end-of-run) and a steady hold at ~32
   pending events (the all-to-all steady state), scheduling each new
   event a pseudo-random delay after the one just popped. *)
let queue_tests () =
  let open Bechamel in
  let module H = Lopc_eventsim.Event_heap in
  let module C = Lopc_eventsim.Calendar_queue in
  let drain_times = queue_times 64 in
  let hold_times = queue_times 1024 in
  let heap_drain () =
    let h = H.create () in
    for _ = 1 to 16 do
      Array.iter (fun t -> H.push h ~time:t 0) drain_times;
      while not (H.is_empty h) do
        ignore (H.pop_payload h)
      done
    done
  in
  let calendar_drain () =
    let q = C.create () in
    for _ = 1 to 16 do
      Array.iter (fun t -> C.push q ~time:t 0) drain_times;
      while not (C.is_empty q) do
        ignore (C.pop_payload q)
      done
    done
  in
  let heap_hold () =
    let h = H.create () in
    for i = 0 to 31 do
      H.push h ~time:hold_times.(i) 0
    done;
    for i = 0 to 999 do
      let t = H.peek_time_exn h in
      ignore (H.pop_payload h);
      H.push h ~time:(t +. hold_times.(i land 1023)) 0
    done
  in
  let calendar_hold () =
    let q = C.create () in
    for i = 0 to 31 do
      C.push q ~time:hold_times.(i) 0
    done;
    for i = 0 to 999 do
      let t = C.peek_time_exn q in
      ignore (C.pop_payload q);
      C.push q ~time:(t +. hold_times.(i land 1023)) 0
    done
  in
  [
    Test.make ~name:"event_heap drain (64-deep x16)" (Staged.stage heap_drain);
    Test.make ~name:"calendar_queue drain (64-deep x16)" (Staged.stage calendar_drain);
    Test.make ~name:"event_heap hold (32 pending, 1000 events)"
      (Staged.stage heap_hold);
    Test.make ~name:"calendar_queue hold (32 pending, 1000 events)"
      (Staged.stage calendar_hold);
  ]

let micro_tests () =
  let open Bechamel in
  let params = Lopc.Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in
  let cs_params = Lopc.Params.create ~c2:1. ~p:32 ~st:40. ~so:131. () in
  let general = Lopc.General.homogeneous_all_to_all params ~w:1000. in
  let stations =
    Array.init 8 (fun _ -> Lopc_mva.Station.queueing ~demand:16.4 ())
  in
  let sim_spec =
    Lopc_workloads.Pattern.to_spec ~nodes:16
      ~work:(Lopc_dist.Distribution.Exponential 1000.)
      ~handler:(Lopc_dist.Distribution.Constant 200.)
      ~wire:(Lopc_dist.Distribution.Constant 40.)
      Lopc_workloads.Pattern.All_to_all
  in
  let rng = Lopc_prng.Rng.create 1 in
  let quartic = Lopc.All_to_all.quartic params ~w:1000. in
  [
    Test.make ~name:"all_to_all.solve (Brent)"
      (Staged.stage (fun () -> Lopc.All_to_all.solve params ~w:1000.));
    Test.make ~name:"all_to_all.solve (iteration)"
      (Staged.stage (fun () ->
           Lopc.All_to_all.solve ~solve_method:Lopc.All_to_all.Damped_iteration params
             ~w:1000.));
    Test.make ~name:"all_to_all.solve (polynomial)"
      (Staged.stage (fun () ->
           Lopc.All_to_all.solve ~solve_method:Lopc.All_to_all.Polynomial_roots params
             ~w:1000.));
    Test.make ~name:"client_server.throughput_curve (31 points)"
      (Staged.stage (fun () -> Lopc.Client_server.throughput_curve cs_params ~w:1000.));
    Test.make ~name:"general.solve (32 nodes)"
      (Staged.stage (fun () -> Lopc.General.solve general));
    Test.make ~name:"exact_mva.solve (N=64, 8 stations)"
      (Staged.stage (fun () ->
           Lopc_mva.Exact_mva.solve ~think_time:1211. ~stations ~population:64 ()));
    Test.make ~name:"simulator (16 nodes, 1000 cycles)"
      (Staged.stage (fun () ->
           Lopc_activemsg.Machine.run ~warmup_cycles:200 ~spec:sim_spec ~cycles:1000 ()));
    Test.make ~name:"rng.float x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Lopc_prng.Rng.float rng)
           done));
    Test.make ~name:"polynomial.real_roots (quartic)"
      (Staged.stage (fun () -> Lopc_numerics.Polynomial.real_roots quartic));
    Test.make ~name:"windowed.solve (window 4)"
      (Staged.stage (fun () -> Lopc.Windowed.solve ~window:4 params ~w:1000.));
    Test.make ~name:"gap.solve (g=50)"
      (Staged.stage (fun () -> Lopc.Gap.solve ~gap:50. params ~w:1000.));
    Test.make ~name:"torus.solve (4x8)"
      (Staged.stage
         (let topo =
            Lopc_topology.Topology.create ~nodes:32 ~per_hop:10. ~link_time:50. ()
          in
          let no_st = Lopc.Params.create ~c2:0. ~p:32 ~st:0. ~so:200. () in
          fun () -> Lopc.Torus.solve no_st ~topology:topo ~w:1000.));
    Test.make ~name:"exact CTMC (P=3)"
      (Staged.stage (fun () ->
           Lopc_markov.Exact_machine.all_to_all ~p:3 ~w:1000. ~so:200. ~st:40. ()));
    Test.make ~name:"exact CTMC (P=4, sparse)"
      (Staged.stage (fun () ->
           Lopc_markov.Exact_machine.all_to_all ~p:4 ~w:1000. ~so:200. ~st:40. ()));
  ]
  @ queue_tests ()
  @ lint_typed_test ()
  @ lint_syntactic_tests ()

(* Estimates sorted by test name: Bechamel hands results back in a
   Hashtbl, whose iteration order is unspecified, so reporting straight
   out of Hashtbl.iter made the output order vary run to run. *)
let micro_estimates () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  micro_tests ()
  |> List.concat_map (fun test ->
         let results =
           Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
         in
         Hashtbl.fold
           (fun name raw acc ->
             let est = Analyze.one ols instance raw in
             let ns =
               match Analyze.OLS.estimates est with
               | Some [ ns ] -> Some ns
               | Some _ | None -> None
             in
             (name, ns) :: acc)
           results [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_micro () =
  print_endline "## Micro-benchmarks (monotonic clock, ns/run)";
  List.iter
    (fun (name, ns) ->
      match ns with
      | Some ns -> Printf.printf "%-45s %12.1f ns/run\n%!" name ns
      | None -> Printf.printf "%-45s (no estimate)\n%!" name)
    (micro_estimates ())

(* --- BENCH_<gitsha>.json -------------------------------------------------- *)

let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let write_bench_json ~sha ~fidelity ~jobs ~wall_s ~artifact_times ~micro =
  let path = Printf.sprintf "BENCH_%s.json" sha in
  let oc = open_out path in
  let item fmt = Printf.ksprintf (output_string oc) fmt in
  item "{\n";
  item "  \"schema\": \"lopc-bench/1\",\n";
  item "  \"git_sha\": %s,\n" (json_string sha);
  item "  \"fidelity\": %s,\n"
    (json_string (match fidelity with Experiments.Quick -> "quick" | Full -> "full"));
  item "  \"jobs\": %d,\n" jobs;
  item "  \"wall_clock_s\": %.3f,\n" wall_s;
  item "  \"artifacts\": [\n";
  List.iteri
    (fun i (name, seconds) ->
      item "    {\"name\": %s, \"seconds\": %.3f}%s\n" (json_string name) seconds
        (if i = List.length artifact_times - 1 then "" else ","))
    artifact_times;
  item "  ],\n";
  item "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      item "    {\"name\": %s, \"ns_per_run\": %s}%s\n" (json_string name)
        (match ns with Some ns -> Printf.sprintf "%.1f" ns | None -> "null")
        (if i = List.length micro - 1 then "" else ","))
    micro;
  item "  ]\n";
  item "}\n";
  close_out oc;
  path

(* --- reproduction driver -------------------------------------------------- *)

let emit ~csv_dir (name, table) =
  Format.printf "%a@." Table.pp table;
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Table.to_csv table);
    close_out oc;
    Format.printf "(csv written to %s)@.@." path

type options = {
  quick : bool;
  list : bool;
  csv_dir : string option;
  trace_dir : string option;
  jobs : int option;
  selected : string list;
}

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf
        "%s\nusage: %s [--quick] [--jobs N] [--csv DIR] [--trace-dir DIR] [--list] [ARTIFACT...]\n"
        msg Sys.argv.(0);
      exit 2)
    fmt

let is_flag a = String.length a >= 2 && String.sub a 0 2 = "--"

let parse_args args =
  let rec go opts = function
    | [] -> { opts with selected = List.rev opts.selected }
    | "--quick" :: rest -> go { opts with quick = true } rest
    | "--list" :: rest -> go { opts with list = true } rest
    | "--csv" :: dir :: rest when not (is_flag dir) ->
      go { opts with csv_dir = Some dir } rest
    | [ "--csv" ] | "--csv" :: _ -> usage_error "--csv requires a directory argument"
    | "--trace-dir" :: dir :: rest when not (is_flag dir) ->
      go { opts with trace_dir = Some dir } rest
    | [ "--trace-dir" ] | "--trace-dir" :: _ ->
      usage_error "--trace-dir requires a directory argument"
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> go { opts with jobs = Some n } rest
      | Some _ | None -> usage_error "--jobs requires a positive integer, got %S" n)
    | [ "--jobs" ] -> usage_error "--jobs requires a positive integer"
    | flag :: _ when is_flag flag -> usage_error "unknown flag %S" flag
    | name :: rest -> go { opts with selected = name :: opts.selected } rest
  in
  go
    {
      quick = false;
      list = false;
      csv_dir = None;
      trace_dir = None;
      jobs = None;
      selected = [];
    }
    args

let artifact_names () = List.map fst (Experiments.plans ())

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let main () =
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  let ensure_dir = function
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | Some _ | None -> ()
  in
  ensure_dir opts.csv_dir;
  ensure_dir opts.trace_dir;
  let fidelity = if opts.quick then Experiments.Quick else Experiments.Full in
  if opts.list then List.iter print_endline ("micro" :: artifact_names ())
  else begin
    let pool = Parallel.create ?jobs:opts.jobs () in
    Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
    let jobs = Parallel.jobs pool in
    if opts.selected = [] then begin
      let t0 = Unix.gettimeofday () in
      let artifact_times =
        List.map
          (fun (name, plan) ->
            let table, seconds =
              timed (fun () -> Experiments.run_plan ~pool plan)
            in
            emit ~csv_dir:opts.csv_dir (name, table);
            Printf.eprintf "[timing] %-20s %4d tasks  %8.2fs\n%!" name
              (Experiments.task_count plan) seconds;
            (name, seconds))
          (Experiments.plans ~fidelity ?trace_dir:opts.trace_dir ())
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      let micro = micro_estimates () in
      let json_path =
        write_bench_json ~sha:(git_sha ()) ~fidelity ~jobs ~wall_s ~artifact_times
          ~micro
      in
      (* Count what was actually emitted, not the name list: the two can
         drift, and the summary is the line CI greps for. *)
      Printf.eprintf "reproduced %d artifacts in %.1fs (jobs=%d); %s\n%!"
        (List.length artifact_times) wall_s jobs json_path
    end
    else
      List.iter
        (fun name ->
          if name = "micro" then run_micro ()
          else
            (* Fresh plan per selection: plans capture mutable PRNG
               streams and are single-shot. *)
            match
              List.assoc_opt name
                (Experiments.plans ~fidelity ?trace_dir:opts.trace_dir ())
            with
            | Some plan ->
              let table, seconds =
                timed (fun () -> Experiments.run_plan ~pool plan)
              in
              emit ~csv_dir:opts.csv_dir (name, table);
              Printf.eprintf "[timing] %-20s %4d tasks  %8.2fs\n%!" name
                (Experiments.task_count plan) seconds
            | None ->
              Printf.eprintf "unknown artifact %S; try --list\n" name;
              exit 1)
        opts.selected
  end

let () =
  try main () with
  | Lopc_numerics.Fixed_point.Diverged msg ->
    (* A diverged/saturated solver is a structured outcome, not a crash:
       name it and fail the run. *)
    Printf.eprintf "solver outcome: %s\n" msg;
    exit 1
